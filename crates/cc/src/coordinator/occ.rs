//! Distributed optimistic concurrency control — the paper's optimistic
//! baseline (MaaT-inspired; see DESIGN.md for the substitution note).
//!
//! Waves issue lock-free versioned reads; commit runs a parallel validate
//! round (latch the write set NO_WAIT, check that every observed version
//! is still current) followed by a decide round that applies writes and
//! releases latches — or, on validation failure, a release-only round
//! before the retry backoff.

use super::{abort_attempt, drive, finish_commit, Coord, CoordinatorProtocol, FailKind, Phase};
use crate::engine::EngineActor;
use crate::msg::{Msg, OccReadItem, ValidateItem};
use crate::protocol::Protocol;
use chiller_common::ids::{NodeId, OpId, PartitionId, RecordId, TxnId};
use chiller_common::metrics::AbortReason;
use chiller_common::value::Row;
use chiller_simnet::{Ctx, Verb};
use chiller_sproc::op::OpKind;
use std::collections::{BTreeMap, BTreeSet, HashSet};

/// Strategy singleton for [`Protocol::Occ`].
pub struct OccCoordinator;

impl CoordinatorProtocol for OccCoordinator {
    fn protocol(&self) -> Protocol {
        Protocol::Occ
    }

    fn wave_message(&self, coord: &Coord, txn: TxnId, req: u64, ops: &[OpId]) -> Msg {
        Msg::OccRead {
            txn,
            req,
            items: ops
                .iter()
                .map(|&id| {
                    let op = coord.proc.op(id);
                    OccReadItem {
                        op: id,
                        record: coord.ops[id.idx()]
                            .record
                            .expect("resolved before dispatch"),
                        want_row: op.kind.produces_output(),
                    }
                })
                .collect(),
        }
    }

    fn on_waves_complete(
        &self,
        eng: &mut EngineActor,
        ctx: &mut Ctx<'_, Msg>,
        txn: TxnId,
        coord: &mut Coord,
    ) {
        send_validate(eng, ctx, txn, coord);
    }

    fn on_response(
        &self,
        eng: &mut EngineActor,
        ctx: &mut Ctx<'_, Msg>,
        src: NodeId,
        txn: TxnId,
        coord: &mut Coord,
        msg: Msg,
    ) {
        match msg {
            Msg::OccReadResp { req, rows, .. } => {
                absorb_occ_read_resp(eng, ctx, coord, req, rows);
                drive(eng, ctx, txn, coord);
            }
            Msg::OccValidateResp { ok, .. } => {
                on_validate_resp(eng, ctx, src, txn, coord, ok);
            }
            Msg::OccDecideAck { .. } => {
                coord.pending = coord.pending.saturating_sub(1);
                if coord.pending == 0 {
                    match coord.phase {
                        Phase::Committing => finish_commit(eng, ctx, txn, coord),
                        Phase::Aborting => abort_attempt(eng, ctx, txn, coord),
                        _ => {}
                    }
                }
            }
            Msg::ReplicateAck { .. } => {
                coord.pending = coord.pending.saturating_sub(1);
                if coord.pending == 0 && coord.phase == Phase::Committing {
                    finish_commit(eng, ctx, txn, coord);
                }
            }
            other => {
                debug_assert!(false, "OCC coordinator received {other:?}");
            }
        }
    }
}

/// Absorb one lock-free versioned read response.
fn absorb_occ_read_resp(
    eng: &mut EngineActor,
    ctx: &mut Ctx<'_, Msg>,
    coord: &mut Coord,
    req: u64,
    rows: Vec<(OpId, Option<Row>, u64)>,
) {
    coord.pending -= 1;
    ctx.use_cpu(eng.op_cpu());
    coord.inflight.remove(&req);
    for (op_id, row, version) in rows {
        let st = &mut coord.ops[op_id.idx()];
        st.responded = true;
        st.version = version;
        let kind = coord.proc.op(op_id).kind.clone();
        match (row, kind) {
            (Some(r), OpKind::Read { .. }) => {
                coord.ops[op_id.idx()].raw_row = Some(r.clone());
                coord.exec.set_output(op_id, r);
            }
            (Some(r), OpKind::Update(_)) => {
                coord.ops[op_id.idx()].raw_row = Some(r);
            }
            (None, OpKind::Insert(_)) => {}
            (Some(_), OpKind::Insert(_)) => {
                coord.failed = Some(FailKind::Logic); // duplicate key
            }
            (Some(r), OpKind::Delete) => {
                coord.ops[op_id.idx()].raw_row = Some(r);
            }
            (None, OpKind::Delete) => {} // validated by version at commit
            (None, _) => {
                coord.failed = Some(FailKind::Logic); // record missing
            }
        }
    }
}

/// Parallel validation round: per touched partition, latch the write set
/// and check read versions.
fn send_validate(eng: &mut EngineActor, ctx: &mut Ctx<'_, Msg>, txn: TxnId, coord: &mut Coord) {
    ctx.use_cpu(eng.txn_cpu());
    coord.phase = Phase::Validating;
    coord.pending = 0;
    coord.validated_ok.clear();
    let write_set: HashSet<RecordId> = coord.writes.iter().map(|(_, w)| w.record).collect();
    let mut items_by_part: BTreeMap<PartitionId, Vec<ValidateItem>> = BTreeMap::new();
    for st in &coord.ops {
        let (Some(rid), Some(part)) = (st.record, st.partition) else {
            continue;
        };
        let entry = items_by_part.entry(part).or_default();
        if let Some(existing) = entry.iter_mut().find(|it| it.record == rid) {
            existing.is_write |= write_set.contains(&rid);
            continue;
        }
        entry.push(ValidateItem {
            record: rid,
            version: st.version,
            is_write: write_set.contains(&rid),
        });
    }
    for (part, items) in items_by_part {
        let target = NodeId(part.0);
        if target != eng.node && eng.tracer.full() {
            eng.tracer.record(
                ctx.now().as_nanos(),
                eng.node,
                chiller_obs::EventKind::SendHop {
                    txn,
                    dst: target,
                    label: "occ_validate",
                },
            );
        }
        ctx.send(target, Verb::OneSided, Msg::OccValidate { txn, items });
        coord.pending += 1;
    }
    if coord.pending == 0 {
        finish_commit(eng, ctx, txn, coord);
    }
}

/// One partition's validation verdict; once all are in, run the decide
/// round (or abort if nothing needs releasing).
fn on_validate_resp(
    eng: &mut EngineActor,
    ctx: &mut Ctx<'_, Msg>,
    src: NodeId,
    txn: TxnId,
    coord: &mut Coord,
    ok: bool,
) {
    ctx.use_cpu(eng.op_cpu());
    coord.pending -= 1;
    if ok {
        coord.validated_ok.push(PartitionId(src.0));
    } else {
        coord.failed = Some(FailKind::Transient(AbortReason::OccValidation));
    }
    if coord.pending > 0 {
        return;
    }
    let commit = coord.failed.is_none();
    occ_decide(eng, ctx, txn, coord, commit);
    if !commit && coord.pending == 0 {
        abort_attempt(eng, ctx, txn, coord);
    }
}

/// Decide round after all validation responses are in: on commit, ship
/// writes + latch releases to every participant (and replicate); on
/// abort, release latches held by the partitions that validated OK.
fn occ_decide(
    eng: &mut EngineActor,
    ctx: &mut Ctx<'_, Msg>,
    txn: TxnId,
    coord: &mut Coord,
    commit: bool,
) {
    coord.phase = if commit {
        Phase::Committing
    } else {
        Phase::Aborting
    };
    coord.pending = 0;
    if commit {
        // Commit point: log the decision before shipping writes/latch
        // releases, mirroring the lock-based commit path.
        super::log_decide(eng, txn, coord, None);
    }
    let write_set: HashSet<RecordId> = coord.writes.iter().map(|(_, w)| w.record).collect();
    let mut writes_by_part: BTreeMap<PartitionId, Vec<_>> = BTreeMap::new();
    for (p, w) in &coord.writes {
        writes_by_part.entry(*p).or_default().push(w.clone());
    }
    let targets: Vec<PartitionId> = if commit {
        coord.participants.iter().copied().collect()
    } else {
        coord.validated_ok.clone()
    };
    for part in targets {
        let writes = if commit {
            writes_by_part.remove(&part).unwrap_or_default()
        } else {
            Vec::new()
        };
        let latched: Vec<RecordId> = coord
            .ops
            .iter()
            .filter(|st| st.partition == Some(part))
            .filter_map(|st| st.record)
            .filter(|r| write_set.contains(r))
            .collect::<BTreeSet<_>>()
            .into_iter()
            .collect();
        if commit && !writes.is_empty() {
            for replica in eng.replica_nodes(part) {
                ctx.send(
                    replica,
                    Verb::Rpc,
                    Msg::Replicate {
                        txn,
                        partition: part,
                        writes: writes.clone(),
                        ack_coordinator: true,
                    },
                );
                coord.pending += 1;
            }
        }
        if !commit && latched.is_empty() {
            continue;
        }
        ctx.send(
            NodeId(part.0),
            Verb::OneSided,
            Msg::OccDecide {
                txn,
                commit,
                writes,
                latched,
            },
        );
        coord.pending += 1;
    }
    if coord.pending == 0 && commit {
        finish_commit(eng, ctx, txn, coord);
    }
}
