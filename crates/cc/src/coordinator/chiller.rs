//! Chiller's two-region execution (§3).
//!
//! The §3.3 run-time decision splits ops into outer/inner at admission.
//! Waves cover the outer region only, under NO_WAIT 2PL; once outer locks
//! are held and outer guards pass, the inner region is delegated by RPC to
//! the inner host, which commits unilaterally and fire-and-forget
//! replicates (§5). The coordinator resumes outer phase 2 after the inner
//! result *and* the inner replicas' acks arrive, then commits the outer
//! region. Transactions with no hot records fall back to plain 2PL+2PC.

use super::{
    abort_attempt, compute_pass, drive, lock_based, Coord, CoordinatorProtocol, FailKind, Phase,
};
use crate::engine::EngineActor;
use crate::msg::Msg;
use crate::protocol::Protocol;
use chiller_common::ids::{NodeId, OpId, RecordId, TxnId};
use chiller_common::value::Row;
use chiller_simnet::{Ctx, Verb};
use chiller_sproc::decision::GuardSite;
use chiller_sproc::{decide_regions, ExecState, Procedure, RegionSplit};

/// Strategy singleton for [`Protocol::Chiller`].
pub struct ChillerCoordinator;

impl CoordinatorProtocol for ChillerCoordinator {
    fn protocol(&self) -> Protocol {
        Protocol::Chiller
    }

    /// §3.3 steps 1–2: resolve every statically-decidable key, look up its
    /// partition and hotness, and run the region decision.
    fn admission_split(
        &self,
        eng: &EngineActor,
        proc: &Procedure,
        exec: &ExecState,
    ) -> RegionSplit {
        let mut op_partition = Vec::with_capacity(proc.num_ops());
        let mut op_hot = Vec::with_capacity(proc.num_ops());
        for op in &proc.ops {
            let rid = op.decision_key(exec).map(|k| RecordId::new(op.table, k));
            op_partition.push(rid.map(|r| eng.placement.partition_of(r)));
            op_hot.push(rid.map(|r| eng.hot.contains(&r)).unwrap_or(false));
        }
        decide_regions(proc, &op_partition, &op_hot)
    }

    fn wave_message(&self, coord: &Coord, txn: TxnId, req: u64, ops: &[OpId]) -> Msg {
        lock_based::lock_read_message(coord, txn, req, ops)
    }

    fn on_waves_complete(
        &self,
        eng: &mut EngineActor,
        ctx: &mut Ctx<'_, Msg>,
        txn: TxnId,
        coord: &mut Coord,
    ) {
        if coord.split.is_two_region() && !coord.inner_sent {
            send_inner(eng, ctx, txn, coord);
        } else {
            // Single-region fallback, or outer phase 2 after the inner
            // region committed.
            lock_based::commit_locked(eng, ctx, txn, coord);
        }
    }

    fn on_response(
        &self,
        eng: &mut EngineActor,
        ctx: &mut Ctx<'_, Msg>,
        _src: NodeId,
        txn: TxnId,
        coord: &mut Coord,
        msg: Msg,
    ) {
        match msg {
            Msg::LockReadResp {
                req,
                granted,
                conflict: _,
                missing,
                stale,
                rows,
                ..
            } => {
                lock_based::absorb_lock_read_resp(
                    eng, ctx, coord, req, granted, missing, stale, rows,
                );
                drive(eng, ctx, txn, coord);
            }
            Msg::InnerResult {
                committed,
                outputs,
                retryable,
                stale,
                ..
            } => on_inner_result(eng, ctx, txn, coord, committed, outputs, retryable, stale),
            Msg::ReplicateAck { .. } => {
                // Inner-region replication acks the *coordinator* (§5,
                // Figure 6); outer-region replication acks land here too.
                coord.pending = coord.pending.saturating_sub(1);
                if coord.pending == 0 {
                    match coord.phase {
                        Phase::InnerWait if coord.inner_ok => {
                            resume_outer_commit(eng, ctx, txn, coord);
                        }
                        Phase::Committing => super::finish_commit(eng, ctx, txn, coord),
                        _ => {}
                    }
                }
            }
            Msg::CommitOuterAck { .. } => {
                lock_based::absorb_commit_phase_ack(eng, ctx, txn, coord);
            }
            other => {
                debug_assert!(false, "Chiller coordinator received {other:?}");
            }
        }
    }
}

/// §3.3 step 4: ship the inner region to the inner host.
fn send_inner(eng: &mut EngineActor, ctx: &mut Ctx<'_, Msg>, txn: TxnId, coord: &mut Coord) {
    let host = coord.split.inner_host.expect("two-region");
    coord.participants.insert(host);
    let inner_has_writes = coord
        .split
        .inner_ops
        .iter()
        .any(|id| coord.proc.op(*id).kind.is_write());
    let expect_replica_acks = if inner_has_writes {
        eng.replica_nodes(host).len()
    } else {
        0
    };
    let outer_outputs: Vec<(OpId, Row)> = (0..coord.proc.num_ops() as u16)
        .map(OpId)
        .filter_map(|id| coord.exec.output(id).map(|r| (id, r.clone())))
        .collect();
    let inner_guards: Vec<usize> = coord
        .split
        .guard_sites
        .iter()
        .enumerate()
        .filter(|(_, s)| **s == GuardSite::Inner)
        .map(|(i, _)| i)
        .collect();
    if NodeId(host.0) != eng.node && eng.tracer.full() {
        eng.tracer.record(
            ctx.now().as_nanos(),
            eng.node,
            chiller_obs::EventKind::SendHop {
                txn,
                dst: NodeId(host.0),
                label: "exec_inner",
            },
        );
    }
    // Provisional decision: once the inner host unilaterally commits, the
    // transaction IS committed (§3.3) even if this coordinator dies before
    // outer phase 2. Log the outer writes known so far, tagged with the
    // inner host; recovery treats the txn as committed iff that host's log
    // carries `InnerCommit`. The final Decide from `commit_locked` (with
    // `pending_inner: None` and the complete write-set) supersedes this.
    super::log_decide(eng, txn, coord, Some(host));
    ctx.send(
        NodeId(host.0),
        Verb::Rpc,
        Msg::ExecInner {
            txn,
            proc: coord.input.proc,
            params: coord.input.params.clone(),
            outer_outputs,
            inner_ops: coord.split.inner_ops.clone(),
            inner_guards,
            expect_replica_acks,
        },
    );
    coord.inner_sent = true;
    coord.phase = Phase::InnerWait;
    coord.pending = 1 + expect_replica_acks;
}

/// §3.3 step 5: the inner host's unilateral decision arrived.
#[allow(clippy::too_many_arguments)]
fn on_inner_result(
    eng: &mut EngineActor,
    ctx: &mut Ctx<'_, Msg>,
    txn: TxnId,
    coord: &mut Coord,
    committed: bool,
    outputs: Vec<(OpId, Row)>,
    retryable: bool,
    stale: bool,
) {
    ctx.use_cpu(eng.op_cpu());
    coord.pending -= 1;
    if committed {
        coord.inner_ok = true;
        for (op, row) in outputs {
            coord.exec.set_output(op, row);
        }
        for id in coord.split.inner_ops.clone() {
            coord.ops[id.idx()].responded = true;
            coord.ops[id.idx()].computed = true;
        }
        if coord.pending == 0 {
            resume_outer_commit(eng, ctx, txn, coord);
        }
    } else {
        coord.failed = Some(if retryable {
            FailKind::Transient(if stale {
                chiller_common::metrics::AbortReason::MigrationStaleRoute
            } else {
                chiller_common::metrics::AbortReason::NoWaitConflict
            })
        } else {
            FailKind::Logic
        });
        // Inner replicas never replicate on abort: drop their count.
        coord.pending = 0;
        abort_attempt(eng, ctx, txn, coord);
    }
}

/// Outer phase 2: with the inner result and its replica acks in, finish
/// the remaining outer computation and commit the outer region.
fn resume_outer_commit(
    eng: &mut EngineActor,
    ctx: &mut Ctx<'_, Msg>,
    txn: TxnId,
    coord: &mut Coord,
) {
    compute_pass(eng, ctx, coord);
    lock_based::commit_locked(eng, ctx, txn, coord);
}
