//! Machinery shared by the lock-based strategies (2PL and Chiller's outer
//! region): combined lock+read waves, grant/conflict handling, and the
//! write-back + unlock commit with the prepare piggybacked (Figure 3a).

use super::{finish_commit, in_scope, lock_mode_for, Coord, FailKind, Phase};
use crate::engine::EngineActor;
use crate::msg::{LockReadItem, Msg, WriteItem};
use chiller_common::ids::{NodeId, OpId, PartitionId, RecordId, TxnId};
use chiller_common::metrics::AbortReason;
use chiller_common::value::Row;
use chiller_simnet::{Ctx, Verb};
use chiller_sproc::op::OpKind;
use std::collections::{BTreeMap, BTreeSet};

/// Wave dispatch: a combined CAS-lock + READ batch for one partition.
pub(super) fn lock_read_message(coord: &Coord, txn: TxnId, req: u64, ops: &[OpId]) -> Msg {
    Msg::LockRead {
        txn,
        req,
        items: ops
            .iter()
            .map(|&id| {
                let op = coord.proc.op(id);
                LockReadItem {
                    op: id,
                    record: coord.ops[id.idx()]
                        .record
                        .expect("resolved before dispatch"),
                    mode: lock_mode_for(op),
                    want_row: op.kind.produces_output(),
                    expect_absent: matches!(op.kind, OpKind::Insert(_)),
                }
            })
            .collect(),
    }
}

/// Absorb one lock+read response: on grant, record held locks and outputs;
/// on conflict or existence fault, mark the attempt failed. The caller
/// drives the next stage afterwards.
#[allow(clippy::too_many_arguments)]
pub(super) fn absorb_lock_read_resp(
    eng: &mut EngineActor,
    ctx: &mut Ctx<'_, Msg>,
    coord: &mut Coord,
    req: u64,
    granted: bool,
    missing: Option<RecordId>,
    stale: bool,
    rows: Vec<(OpId, Row)>,
) {
    coord.pending -= 1;
    ctx.use_cpu(eng.op_cpu());
    let ops = coord.inflight.remove(&req).expect("unknown request id");
    if granted {
        for &id in &ops {
            let st = &mut coord.ops[id.idx()];
            st.responded = true;
            coord
                .held_locks
                .push((st.partition.expect("issued"), st.record.expect("issued")));
        }
        for (op_id, row) in rows {
            let st = &mut coord.ops[op_id.idx()];
            st.raw_row = Some(row.clone());
            if matches!(coord.proc.op(op_id).kind, OpKind::Read { .. }) {
                coord.exec.set_output(op_id, row);
            }
        }
    } else if missing.is_some() {
        coord.failed = Some(FailKind::Logic);
    } else if stale {
        coord.failed = Some(FailKind::Transient(AbortReason::MigrationStaleRoute));
    } else {
        coord.failed = Some(FailKind::Transient(AbortReason::NoWaitConflict));
    }
}

/// Commit for lock-based execution (2PL, Chiller outer phase 2): per
/// written partition, replicate and send WRITE-back + unlock one-sided
/// verbs, then wait for every ack.
pub(super) fn commit_locked(
    eng: &mut EngineActor,
    ctx: &mut Ctx<'_, Msg>,
    txn: TxnId,
    coord: &mut Coord,
) {
    debug_assert!(
        coord
            .ops
            .iter()
            .enumerate()
            .all(|(i, st)| !in_scope(coord, OpId(i as u16)) || st.computed),
        "committing with uncomputed ops"
    );
    ctx.use_cpu(eng.txn_cpu());
    coord.phase = Phase::Committing;
    coord.pending = 0;
    // Commit point: the decision (with the full outer write-set) goes to
    // the coordinator's log before any write-back is sent, so recovery can
    // repair participants that never saw their CommitOuter.
    super::log_decide(eng, txn, coord, None);

    let mut writes_by_part: BTreeMap<PartitionId, Vec<WriteItem>> = BTreeMap::new();
    for (p, w) in coord.writes.drain(..) {
        writes_by_part.entry(p).or_default().push(w);
    }
    let mut unlocks_by_part: BTreeMap<PartitionId, Vec<RecordId>> = BTreeMap::new();
    for (p, rid) in coord.held_locks.drain(..) {
        unlocks_by_part.entry(p).or_default().push(rid);
    }
    let parts: BTreeSet<PartitionId> = writes_by_part
        .keys()
        .chain(unlocks_by_part.keys())
        .copied()
        .collect();
    for part in parts {
        let writes = writes_by_part.remove(&part).unwrap_or_default();
        let unlocks = unlocks_by_part.remove(&part).unwrap_or_default();
        if !writes.is_empty() {
            for replica in eng.replica_nodes(part) {
                ctx.send(
                    replica,
                    Verb::Rpc,
                    Msg::Replicate {
                        txn,
                        partition: part,
                        writes: writes.clone(),
                        ack_coordinator: true,
                    },
                );
                coord.pending += 1;
            }
        }
        ctx.send(
            NodeId(part.0),
            Verb::OneSided,
            Msg::CommitOuter {
                txn,
                writes,
                unlocks,
            },
        );
        coord.pending += 1;
    }
    if coord.pending == 0 {
        finish_commit(eng, ctx, txn, coord);
    }
}

/// Absorb a commit-phase ack (write-back ack or replication ack): once all
/// acks drain during `Committing`, the transaction is committed.
pub(super) fn absorb_commit_phase_ack(
    eng: &mut EngineActor,
    ctx: &mut Ctx<'_, Msg>,
    txn: TxnId,
    coord: &mut Coord,
) {
    coord.pending = coord.pending.saturating_sub(1);
    if coord.pending == 0 && coord.phase == Phase::Committing {
        finish_commit(eng, ctx, txn, coord);
    }
}
