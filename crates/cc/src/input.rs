//! Transaction inputs and the stored-procedure registry.
//!
//! Workload crates implement [`InputSource`] to feed each engine a stream of
//! transaction invocations (the closed-loop driver keeps `concurrency` of
//! them in flight per engine).

use chiller_common::time::SimTime;
use chiller_common::value::Value;
use chiller_sproc::Procedure;
use rand::rngs::StdRng;
use std::sync::Arc;

/// One transaction invocation: which registered procedure, with what
/// parameters.
#[derive(Debug, Clone)]
pub struct TxnInput {
    /// Index into the [`ProcRegistry`].
    pub proc: usize,
    pub params: Vec<Value>,
}

/// The system catalog of compiled stored procedures (§3.2: the dependency
/// graph is built "when registering a new stored procedure in the system").
#[derive(Clone, Default)]
pub struct ProcRegistry {
    procs: Vec<Arc<Procedure>>,
}

impl ProcRegistry {
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a procedure, returning its index for [`TxnInput::proc`].
    pub fn register(&mut self, p: Procedure) -> usize {
        self.procs.push(Arc::new(p));
        self.procs.len() - 1
    }

    pub fn get(&self, idx: usize) -> &Arc<Procedure> {
        &self.procs[idx]
    }

    pub fn len(&self) -> usize {
        self.procs.len()
    }

    pub fn is_empty(&self) -> bool {
        self.procs.is_empty()
    }
}

/// Produces the next transaction input for an engine. Implementations must
/// be deterministic given the RNG handed in (which is seeded per engine)
/// and the virtual time of the request — `now` lets sources model
/// time-varying workloads (hotspot shifts, diurnal skew) reproducibly.
pub trait InputSource: Send {
    fn next_input(&mut self, rng: &mut StdRng, now: SimTime) -> TxnInput;
}

/// Fixed round-robin over a list of inputs — used by tests.
pub struct ScriptedSource {
    inputs: Vec<TxnInput>,
    next: usize,
}

impl ScriptedSource {
    pub fn new(inputs: Vec<TxnInput>) -> Self {
        assert!(!inputs.is_empty());
        ScriptedSource { inputs, next: 0 }
    }
}

impl InputSource for ScriptedSource {
    fn next_input(&mut self, _rng: &mut StdRng, _now: SimTime) -> TxnInput {
        let input = self.inputs[self.next % self.inputs.len()].clone();
        self.next += 1;
        input
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chiller_common::ids::TableId;
    use chiller_common::rng::seeded;
    use chiller_sproc::ProcedureBuilder;

    #[test]
    fn registry_roundtrip() {
        let mut reg = ProcRegistry::new();
        let p = ProcedureBuilder::new("noop")
            .read(TableId(1), 0, "r")
            .build()
            .unwrap();
        let idx = reg.register(p);
        assert_eq!(reg.get(idx).name, "noop");
        assert_eq!(reg.len(), 1);
    }

    #[test]
    fn scripted_source_round_robins() {
        let mut src = ScriptedSource::new(vec![
            TxnInput {
                proc: 0,
                params: vec![Value::I64(1)],
            },
            TxnInput {
                proc: 1,
                params: vec![Value::I64(2)],
            },
        ]);
        let mut rng = seeded(0);
        let t = SimTime::ZERO;
        assert_eq!(src.next_input(&mut rng, t).proc, 0);
        assert_eq!(src.next_input(&mut rng, t).proc, 1);
        assert_eq!(src.next_input(&mut rng, t).proc, 0);
    }
}
