//! # chiller-cc
//!
//! Distributed transaction execution engines (§2, §3, §5 of the Chiller
//! paper), implemented as deterministic actors on the `chiller-simnet`
//! cluster:
//!
//! * **Chiller two-region execution** — outer region under NO_WAIT 2PL,
//!   inner region executed and unilaterally committed by the inner host,
//!   with the paper's §5 replication protocol (inner host fire-and-forget
//!   replicates, replicas ack the *coordinator*).
//! * **Traditional 2PL + 2PC** (NO_WAIT) — the paper's pessimistic baseline
//!   (Figure 3a), with the prepare phase piggybacked on the last execution
//!   round.
//! * **Distributed OCC** — the optimistic baseline: lock-free execution via
//!   one-sided reads, then parallel validate-and-commit (MaaT-inspired; see
//!   DESIGN.md for the substitution note).
//!
//! All three share one execution framework: stored procedures run in
//! dependency *waves* (each wave issues all ready operations to their
//! partitions in parallel), mirroring how a NAM-DB coordinator overlaps
//! one-sided accesses. One [`engine::EngineActor`] per node plays both the
//! coordinator role for transactions it originates and the participant role
//! for storage it owns, interleaving up to `concurrency` open transactions
//! exactly like the paper's co-routines (§6).
//!
//! The engine itself is a protocol-agnostic shell: everything
//! protocol-specific lives behind the
//! [`coordinator::CoordinatorProtocol`] strategy trait, with one
//! implementation per protocol under [`coordinator`].

pub mod coordinator;
pub mod engine;
pub mod input;
pub mod migration;
pub mod msg;
pub mod participant;
pub mod protocol;

pub use coordinator::CoordinatorProtocol;
pub use engine::{EngineActor, EngineReport, HotSet};
pub use input::{InputSource, ProcRegistry, TxnInput};
pub use migration::MigrationJob;
pub use msg::Msg;
pub use protocol::Protocol;
