//! Live record migration: the data-plane half of adaptive repartitioning.
//!
//! A migration moves one record from its current owner (*source*) to a new
//! owner (*destination*) without stopping the cluster. The destination
//! engine coordinates; every step is an ordinary message in virtual time
//! under plain NO_WAIT locking, so migrations serialize against concurrent
//! transactions exactly like any other lock-based write:
//!
//! 1. **lock-local** — the destination CAS-locks the bucket the record will
//!    land in (NO_WAIT; conflict → backoff and retry);
//! 2. **lock-copy** — `MigrateLock` CAS-locks the record at the source and
//!    returns its row. From here to step 5 the source copy is frozen:
//!    conflicting transactions retry, so no write can be lost;
//! 3. **replicate-in** — the destination installs the copy and waits for
//!    its replica group to ack the insert. Until the flip, no transaction
//!    routes to the destination copy, so replica writes cannot race;
//! 4. **re-publish** — the directory entry flips to the destination at one
//!    virtual-time instant; the destination bucket unlocks. New lock
//!    requests now land on the (complete, replicated) destination copy;
//! 5. **finish** — `MigrateFinish` deletes the source copy, releases the
//!    migration lock, replicates the deletion to the source's replica
//!    group, and records the id in `migrated_out`: a later miss there is a
//!    stale-routing race and is answered as a retryable conflict.
//!
//! Legality note: between steps 2 and 5 both copies exist but at most one
//! is reachable and the other is exclusively locked — balance-style
//! invariants over *committed, quiesced* state are preserved, and a crash
//! of the simulated protocol mid-flight is impossible by construction
//! (virtual time, no partial delivery).

use crate::engine::{EngineActor, TOKEN_MASK, TOKEN_MIG};
use crate::msg::{Msg, WriteItem, WriteKind};
use chiller_adaptive::RecordMove;
use chiller_common::ids::{NodeId, RecordId, TxnId};
use chiller_common::value::Row;
use chiller_simnet::{Ctx, Verb};
use chiller_storage::lock::LockMode;
use chiller_storage::wal::{RedoOp, RedoWrite, WalRecord};

/// One migration work item (a `RecordMove` plus retry bookkeeping).
#[derive(Debug, Clone, Copy)]
pub struct MigrationJob {
    pub record: RecordId,
    pub from: chiller_common::ids::PartitionId,
    pub to: chiller_common::ids::PartitionId,
    pub hot_after: bool,
    pub attempts: u32,
}

impl From<RecordMove> for MigrationJob {
    fn from(mv: RecordMove) -> Self {
        MigrationJob {
            record: mv.record,
            from: mv.from,
            to: mv.to,
            hot_after: mv.hot_after,
            attempts: 0,
        }
    }
}

/// What the destination is currently waiting for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum MigPhase {
    /// The source's lock+copy response.
    Src,
    /// The destination replica group's insert acks.
    Replicas,
    /// Flipped; the source's finish ack.
    Finish,
}

/// Destination-side state of one in-flight migration.
#[derive(Debug)]
pub(crate) struct Migration {
    pub(crate) job: MigrationJob,
    pub(crate) phase: MigPhase,
    pub(crate) pending: usize,
}

impl EngineActor {
    /// Start one migration planned for this engine's partition (called by
    /// the epoch scheduler through the control-plane injection point).
    pub fn begin_migration(&mut self, ctx: &mut Ctx<'_, Msg>, mv: RecordMove) {
        debug_assert_eq!(
            mv.to, self.store.partition,
            "migrations are coordinated by their destination"
        );
        self.attempt_migration(ctx, MigrationJob::from(mv));
    }

    /// One NO_WAIT attempt: lock the destination bucket, then ask the
    /// source for the locked copy.
    pub(crate) fn attempt_migration(&mut self, ctx: &mut Ctx<'_, Msg>, mut job: MigrationJob) {
        if !self.accepting {
            // Draining for quiescence: abandon rather than start new work.
            self.metrics.migrations_abandoned += 1;
            return;
        }
        job.attempts += 1;
        self.txn_seq += 1;
        let txn = TxnId::new(self.node, self.txn_seq);
        let now = ctx.now();
        if self
            .store
            .try_lock(job.record, txn, LockMode::Exclusive, now)
            .is_err()
        {
            self.reschedule_migration(ctx, job);
            return;
        }
        ctx.send(
            NodeId(job.from.0),
            Verb::OneSided,
            Msg::MigrateLock {
                txn,
                record: job.record,
            },
        );
        self.migrations.insert(
            txn,
            Migration {
                job,
                phase: MigPhase::Src,
                pending: 1,
            },
        );
    }

    /// Back off and retry later (the same jittered exponential policy as
    /// transaction retries), up to the engine's retry budget.
    fn reschedule_migration(&mut self, ctx: &mut Ctx<'_, Msg>, job: MigrationJob) {
        if job.attempts >= self.config.engine.max_retries {
            self.metrics.migrations_abandoned += 1;
            return;
        }
        self.metrics.migration_retries += 1;
        let backoff = self.backoff_for(job.attempts);
        self.mig_seq += 1;
        let id = self.mig_seq & TOKEN_MASK;
        self.mig_retries.insert(id, job);
        ctx.set_timer(backoff, TOKEN_MIG | id);
    }

    /// A coordinator-side migration response arrived (lock+copy response,
    /// replica ack, or finish ack).
    pub(crate) fn on_migration_response(&mut self, ctx: &mut Ctx<'_, Msg>, txn: TxnId, msg: Msg) {
        let Some(mut mig) = self.migrations.remove(&txn) else {
            return;
        };
        match msg {
            Msg::MigrateLockResp {
                granted,
                missing,
                row,
                version,
                ..
            } => {
                debug_assert_eq!(mig.phase, MigPhase::Src);
                if !granted {
                    // Release the destination bucket before retrying or
                    // abandoning — no lock is held between attempts.
                    self.store.unlock(mig.job.record, txn, ctx.now());
                    if missing {
                        self.metrics.migrations_abandoned += 1;
                    } else {
                        self.reschedule_migration(ctx, mig.job);
                    }
                    return;
                }
                let row = row.expect("granted migration copy carries the row");
                self.install_copy_and_replicate(ctx, txn, mig, row, version);
            }
            Msg::ReplicateAck { .. } => {
                debug_assert_eq!(mig.phase, MigPhase::Replicas);
                mig.pending = mig.pending.saturating_sub(1);
                if mig.pending == 0 {
                    self.flip_and_finish(ctx, txn, mig);
                } else {
                    self.migrations.insert(txn, mig);
                }
            }
            Msg::MigrateFinishAck { .. } => {
                debug_assert_eq!(mig.phase, MigPhase::Finish);
                self.metrics.migrations_completed += 1;
            }
            other => {
                debug_assert!(false, "migration coordinator received {other:?}");
            }
        }
    }

    /// Step 3: install the copy locally and replicate it to this
    /// partition's replica group, waiting for every ack before the flip so
    /// no later transaction write can be reordered behind the insert.
    fn install_copy_and_replicate(
        &mut self,
        ctx: &mut Ctx<'_, Msg>,
        txn: TxnId,
        mut mig: Migration,
        row: Row,
        src_version: u64,
    ) {
        // `insert_migrated` continues the source's per-record version chain
        // at the destination, so the moved record keeps one monotone
        // version history (the serializability checker depends on this; a
        // plain insert would restart the destination's counter and mint
        // duplicate version numbers for the same record).
        self.store
            .insert_migrated(mig.job.record, row.clone(), src_version)
            .expect("migrated-in record must be fresh at the destination");
        // Durability: the migrated-in copy must survive a destination crash
        // once the source has retired its copy, so it goes to the redo log
        // with its carried-over version (flushed before `MigrateFinish`).
        let version = self.store.record_version(mig.job.record);
        self.wal_append(WalRecord::Redo {
            txn,
            writes: vec![RedoWrite {
                record: mig.job.record,
                version,
                op: RedoOp::Insert(row.clone()),
            }],
        });
        // The record is ours again: a future miss on it would be a genuine
        // existence fault, not a stale-routing race.
        self.migrated_out.remove(&mig.job.record);
        let partition = self.store.partition;
        let replicas = self.replica_nodes(partition);
        if replicas.is_empty() {
            self.flip_and_finish(ctx, txn, mig);
            return;
        }
        mig.pending = replicas.len();
        mig.phase = MigPhase::Replicas;
        for replica in replicas {
            ctx.send(
                replica,
                Verb::Rpc,
                Msg::Replicate {
                    txn,
                    partition,
                    writes: vec![WriteItem {
                        record: mig.job.record,
                        kind: WriteKind::Insert(row.clone()),
                    }],
                    ack_coordinator: true,
                },
            );
        }
        self.migrations.insert(txn, mig);
    }

    /// Step 4 + 5 kickoff: re-publish the record at this partition (the
    /// single-instant directory flip), release the local bucket, and tell
    /// the source to retire its copy.
    fn flip_and_finish(&mut self, ctx: &mut Ctx<'_, Msg>, txn: TxnId, mut mig: Migration) {
        let dir = self
            .hot
            .directory()
            .expect("migrations only run with the adaptive directory")
            .clone();
        dir.relocate(mig.job.record, self.store.partition, mig.job.hot_after);
        self.store.unlock(mig.job.record, txn, ctx.now());
        // Hand-off barrier: the destination's copy (logged at install) must
        // be on disk before the source is told to delete its own — after
        // this flush, a crash of either side leaves at least one durable
        // copy recoverable.
        self.wal_flush();
        ctx.send(
            NodeId(mig.job.from.0),
            Verb::OneSided,
            Msg::MigrateFinish {
                txn,
                record: mig.job.record,
            },
        );
        mig.phase = MigPhase::Finish;
        mig.pending = 1;
        self.migrations.insert(txn, mig);
    }

    // ---- participant (source) side ---------------------------------------

    /// Step 2 at the source: CAS-lock the record's bucket NO_WAIT and
    /// return the row. A conflict is reported like any lock conflict; a
    /// missing record means the plan went stale (the record already moved)
    /// and the destination abandons.
    pub(crate) fn handle_migrate_lock(
        &mut self,
        ctx: &mut Ctx<'_, Msg>,
        src: NodeId,
        txn: TxnId,
        record: RecordId,
    ) {
        let now = ctx.now();
        let resp = match self.store.try_lock(record, txn, LockMode::Exclusive, now) {
            Err(_) => {
                if let Some(mon) = self.monitor.as_mut() {
                    mon.on_conflict(record);
                }
                Msg::MigrateLockResp {
                    txn,
                    granted: false,
                    missing: false,
                    row: None,
                    version: 0,
                }
            }
            Ok(()) => match self.store.read_opt(record).cloned() {
                Some(row) => Msg::MigrateLockResp {
                    txn,
                    granted: true,
                    missing: false,
                    row: Some(row),
                    version: self.store.record_version(record),
                },
                None => {
                    self.store.unlock(record, txn, now);
                    Msg::MigrateLockResp {
                        txn,
                        granted: false,
                        missing: true,
                        row: None,
                        version: 0,
                    }
                }
            },
        };
        ctx.send(src, Verb::OneSided, resp);
    }

    /// Step 5 at the source: the destination has re-published — delete the
    /// local copy, release the migration lock, replicate the deletion to
    /// this partition's replica group, and remember the departure.
    pub(crate) fn handle_migrate_finish(
        &mut self,
        ctx: &mut Ctx<'_, Msg>,
        src: NodeId,
        txn: TxnId,
        record: RecordId,
    ) {
        debug_assert!(
            self.store.holds_lock(record, txn),
            "finish without the migration lock"
        );
        self.store
            .delete(record)
            .expect("migrated record present at the source until finish");
        // The departure is a versioned write like any other: log the
        // tombstone so replaying the source's log does not resurrect the
        // record the destination now owns.
        let version = self.store.record_version(record);
        self.wal_append(WalRecord::Redo {
            txn,
            writes: vec![RedoWrite {
                record,
                version,
                op: RedoOp::Delete,
            }],
        });
        self.store.unlock(record, txn, ctx.now());
        self.migrated_out.insert(record);
        let partition = self.store.partition;
        for replica in self.replica_nodes(partition) {
            ctx.send(
                replica,
                Verb::Rpc,
                Msg::Replicate {
                    txn,
                    partition,
                    writes: vec![WriteItem {
                        record,
                        kind: WriteKind::Delete,
                    }],
                    ack_coordinator: false,
                },
            );
        }
        ctx.send(src, Verb::OneSided, Msg::MigrateFinishAck { txn });
    }
}
