//! Protocol messages exchanged between engines.
//!
//! Verb classes (see `chiller-simnet`): lock/read/write-back/validation
//! messages model one-sided RDMA verbs (NIC-side, no remote CPU); inner
//! region delegation and replication are RPCs (remote engine CPU).

use chiller_common::ids::{OpId, PartitionId, RecordId, TxnId};
use chiller_common::value::Row;
use chiller_storage::lock::LockMode;

/// One item of a combined lock+read request (2PL / Chiller outer region).
#[derive(Debug, Clone)]
pub struct LockReadItem {
    pub op: OpId,
    pub record: RecordId,
    pub mode: LockMode,
    /// Whether the op needs the current row back (reads and updates do;
    /// inserts and deletes only need the lock).
    pub want_row: bool,
    /// Whether a missing record is acceptable (insert target) vs an error.
    pub expect_absent: bool,
}

/// One item of an OCC (lock-free) read.
#[derive(Debug, Clone)]
pub struct OccReadItem {
    pub op: OpId,
    pub record: RecordId,
    pub want_row: bool,
}

/// A buffered write shipped at commit time.
#[derive(Debug, Clone)]
pub struct WriteItem {
    pub record: RecordId,
    pub kind: WriteKind,
}

#[derive(Debug, Clone)]
pub enum WriteKind {
    /// Overwrite with the row (updates).
    Put(Row),
    /// Insert a fresh record.
    Insert(Row),
    /// Remove the record.
    Delete,
}

impl WriteKind {
    /// The redo-log operation this write becomes in a WAL record.
    pub(crate) fn to_redo_op(&self) -> chiller_storage::wal::RedoOp {
        match self {
            WriteKind::Put(row) => chiller_storage::wal::RedoOp::Put(row.clone()),
            WriteKind::Insert(row) => chiller_storage::wal::RedoOp::Insert(row.clone()),
            WriteKind::Delete => chiller_storage::wal::RedoOp::Delete,
        }
    }
}

/// Validation item for OCC: the version observed at read time.
#[derive(Debug, Clone, Copy)]
pub struct ValidateItem {
    pub record: RecordId,
    pub version: u64,
    /// True when the transaction wrote this record (needs a write latch and
    /// blocks concurrent validators); false for read-set entries.
    pub is_write: bool,
}

/// All protocol messages.
#[derive(Debug, Clone)]
pub enum Msg {
    // ---- 2PL / Chiller outer region (one-sided verbs) -------------------
    /// Combined CAS-lock + READ of a batch of records on one partition.
    /// `req` correlates the response with the coordinator's wave bookkeeping.
    LockRead {
        txn: TxnId,
        req: u64,
        items: Vec<LockReadItem>,
    },
    /// Reply: on failure every item in *this* message is already released.
    LockReadResp {
        txn: TxnId,
        req: u64,
        granted: bool,
        /// The record that conflicted, when `!granted`.
        conflict: Option<RecordId>,
        /// Missing-record op (treated as a non-retryable logic failure).
        missing: Option<RecordId>,
        /// The conflict came from a stale-routing race (the record migrated
        /// away after the coordinator resolved its placement), not a held
        /// lock — distinguishes the abort-reason taxonomy entries.
        stale: bool,
        /// `(op, row)` for granted `want_row` items.
        rows: Vec<(OpId, Row)>,
    },
    /// WRITE-back + unlock at commit (prepare piggybacked — Figure 3a).
    CommitOuter {
        txn: TxnId,
        writes: Vec<WriteItem>,
        unlocks: Vec<RecordId>,
    },
    CommitOuterAck {
        txn: TxnId,
    },
    /// Release locks without applying anything (abort path).
    AbortOuter {
        txn: TxnId,
        unlocks: Vec<RecordId>,
    },

    // ---- Chiller inner region (RPCs) -------------------------------------
    /// Delegate the inner region to the inner host (§3.3 step 4).
    ExecInner {
        txn: TxnId,
        proc: usize,
        params: Vec<chiller_common::value::Value>,
        /// Outputs of already-executed outer ops the inner region needs.
        outer_outputs: Vec<(OpId, Row)>,
        inner_ops: Vec<OpId>,
        /// Indices into the procedure's guards that the inner host must
        /// check before committing.
        inner_guards: Vec<usize>,
        /// How many replica acks the coordinator will wait for (so it can
        /// arm its counter before results race back).
        expect_replica_acks: usize,
    },
    /// Inner host's unilateral decision (§3.3 step 4 → 5).
    InnerResult {
        txn: TxnId,
        committed: bool,
        /// Outputs of inner ops the coordinator's outer phase-2 needs.
        outputs: Vec<(OpId, Row)>,
        /// On failure: was it a lock conflict (retryable) or a guard
        /// violation (final)?
        retryable: bool,
        /// A retryable failure caused by a stale split (the record migrated
        /// off this host after admission), not a held lock.
        stale: bool,
    },

    // ---- Replication (§5) -------------------------------------------------
    /// Primary → replica: apply these writes for partition `partition`.
    Replicate {
        txn: TxnId,
        partition: PartitionId,
        writes: Vec<WriteItem>,
        /// Inner-region replication must ack the coordinator (§5, Figure 6).
        ack_coordinator: bool,
    },
    /// Replica → coordinator ack for inner-region replication.
    ReplicateAck {
        txn: TxnId,
    },

    // ---- Live migration (adaptive repartitioning) -------------------------
    /// Destination → source: CAS-lock the record's bucket at the source and
    /// read its row — the same one-sided combination a lock+read wave uses,
    /// so migrations contend with transactions under plain NO_WAIT rules.
    MigrateLock {
        txn: TxnId,
        record: RecordId,
    },
    MigrateLockResp {
        txn: TxnId,
        granted: bool,
        /// The record no longer exists at the source (stale plan): the
        /// destination abandons the move instead of retrying.
        missing: bool,
        /// The current row, when granted.
        row: Option<Row>,
        /// The record's per-record version at the source when granted, so
        /// the destination install continues the same version chain (the
        /// serializability checker needs one monotone chain per record
        /// across migrations; see `PartitionStore::insert_migrated`).
        version: u64,
    },
    /// Destination → source after the re-publish flip: delete the source
    /// copy, release the migration lock, and replicate the deletion.
    MigrateFinish {
        txn: TxnId,
        record: RecordId,
    },
    MigrateFinishAck {
        txn: TxnId,
    },

    // ---- OCC --------------------------------------------------------------
    /// Lock-free versioned read (one-sided).
    OccRead {
        txn: TxnId,
        req: u64,
        items: Vec<OccReadItem>,
    },
    OccReadResp {
        txn: TxnId,
        req: u64,
        /// `(op, row, version)`; missing records yield an empty row marker.
        rows: Vec<(OpId, Option<Row>, u64)>,
    },
    /// Parallel validation: latch write set, check read versions.
    OccValidate {
        txn: TxnId,
        items: Vec<ValidateItem>,
    },
    OccValidateResp {
        txn: TxnId,
        ok: bool,
        conflict: Option<RecordId>,
    },
    /// Second round: apply writes + release latches (or just release).
    OccDecide {
        txn: TxnId,
        commit: bool,
        writes: Vec<WriteItem>,
        /// Latches taken by the validate round that must be dropped.
        latched: Vec<RecordId>,
    },
    OccDecideAck {
        txn: TxnId,
    },
}

impl Msg {
    /// The transaction this message belongs to (all messages are per-txn).
    pub fn txn(&self) -> TxnId {
        match self {
            Msg::LockRead { txn, .. }
            | Msg::LockReadResp { txn, .. }
            | Msg::CommitOuter { txn, .. }
            | Msg::CommitOuterAck { txn }
            | Msg::AbortOuter { txn, .. }
            | Msg::ExecInner { txn, .. }
            | Msg::InnerResult { txn, .. }
            | Msg::Replicate { txn, .. }
            | Msg::ReplicateAck { txn }
            | Msg::MigrateLock { txn, .. }
            | Msg::MigrateLockResp { txn, .. }
            | Msg::MigrateFinish { txn, .. }
            | Msg::MigrateFinishAck { txn }
            | Msg::OccRead { txn, .. }
            | Msg::OccReadResp { txn, .. }
            | Msg::OccValidate { txn, .. }
            | Msg::OccValidateResp { txn, .. }
            | Msg::OccDecide { txn, .. }
            | Msg::OccDecideAck { txn } => *txn,
        }
    }

    /// Short snake_case label naming the message kind — the hop label in
    /// trace-event exports.
    pub fn kind_label(&self) -> &'static str {
        match self {
            Msg::LockRead { .. } => "lock_read",
            Msg::LockReadResp { .. } => "lock_read_resp",
            Msg::CommitOuter { .. } => "commit_outer",
            Msg::CommitOuterAck { .. } => "commit_outer_ack",
            Msg::AbortOuter { .. } => "abort_outer",
            Msg::ExecInner { .. } => "exec_inner",
            Msg::InnerResult { .. } => "inner_result",
            Msg::Replicate { .. } => "replicate",
            Msg::ReplicateAck { .. } => "replicate_ack",
            Msg::MigrateLock { .. } => "migrate_lock",
            Msg::MigrateLockResp { .. } => "migrate_lock_resp",
            Msg::MigrateFinish { .. } => "migrate_finish",
            Msg::MigrateFinishAck { .. } => "migrate_finish_ack",
            Msg::OccRead { .. } => "occ_read",
            Msg::OccReadResp { .. } => "occ_read_resp",
            Msg::OccValidate { .. } => "occ_validate",
            Msg::OccValidateResp { .. } => "occ_validate_resp",
            Msg::OccDecide { .. } => "occ_decide",
            Msg::OccDecideAck { .. } => "occ_decide_ack",
        }
    }

    /// Verb class for the network model.
    pub fn verb(&self) -> chiller_simnet::Verb {
        use chiller_simnet::Verb;
        match self {
            // One-sided verbs: lock words, reads, write-backs, validation
            // latches — all NIC-side in a NAM-DB design.
            Msg::LockRead { .. }
            | Msg::LockReadResp { .. }
            | Msg::CommitOuter { .. }
            | Msg::CommitOuterAck { .. }
            | Msg::AbortOuter { .. }
            | Msg::OccRead { .. }
            | Msg::OccReadResp { .. }
            | Msg::OccValidate { .. }
            | Msg::OccValidateResp { .. }
            | Msg::OccDecide { .. }
            | Msg::OccDecideAck { .. }
            | Msg::ReplicateAck { .. }
            | Msg::MigrateLock { .. }
            | Msg::MigrateLockResp { .. }
            | Msg::MigrateFinish { .. }
            | Msg::MigrateFinishAck { .. }
            | Msg::InnerResult { .. } => Verb::OneSided,
            // RPCs that consume remote engine CPU.
            Msg::ExecInner { .. } | Msg::Replicate { .. } => Verb::Rpc,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chiller_common::ids::NodeId;
    use chiller_simnet::Verb;

    #[test]
    fn txn_extraction_covers_variants() {
        let t = TxnId::new(NodeId(1), 7);
        let msgs = vec![
            Msg::LockRead {
                txn: t,
                req: 0,
                items: vec![],
            },
            Msg::CommitOuterAck { txn: t },
            Msg::ReplicateAck { txn: t },
            Msg::OccDecideAck { txn: t },
            Msg::MigrateLock {
                txn: t,
                record: chiller_common::ids::RecordId::new(chiller_common::ids::TableId(1), 7),
            },
            Msg::MigrateFinishAck { txn: t },
        ];
        for m in msgs {
            assert_eq!(m.txn(), t);
        }
    }

    #[test]
    fn verb_classes() {
        let t = TxnId::new(NodeId(0), 1);
        assert_eq!(
            Msg::LockRead {
                txn: t,
                req: 0,
                items: vec![]
            }
            .verb(),
            Verb::OneSided
        );
        assert_eq!(
            Msg::Replicate {
                txn: t,
                partition: chiller_common::ids::PartitionId(0),
                writes: vec![],
                ack_coordinator: false
            }
            .verb(),
            Verb::Rpc
        );
        assert_eq!(
            Msg::ExecInner {
                txn: t,
                proc: 0,
                params: vec![],
                outer_outputs: vec![],
                inner_ops: vec![],
                inner_guards: vec![],
                expect_replica_acks: 0,
            }
            .verb(),
            Verb::Rpc
        );
    }
}
