//! The execution engine shell: one actor per node, playing coordinator for
//! transactions it originates and participant for storage it owns.
//!
//! This module is deliberately **protocol-agnostic**. It owns the stores,
//! metrics, input source, retry timers and the table of open transactions,
//! and routes messages:
//!
//! * participant-side verbs (lock/read, write-back, validation, inner
//!   execution, replication) go to the storage-owner handlers in
//!   [`crate::participant`];
//! * coordinator-side responses go to the active
//!   [`CoordinatorProtocol`] strategy, selected once at construction
//!   from [`Protocol`].
//!
//! Everything protocol-specific — the §3.3 region decision, wave message
//! types, prepare/validate rounds, decide/replicate handling — lives behind
//! the `CoordinatorProtocol` trait in [`crate::coordinator`], with one
//! implementation per paper protocol (`chiller`, `two_pl`, `occ`).
//!
//! Up to `concurrency` transactions are open per engine (the paper's
//! co-routines): the actor interleaves their state machines as messages
//! arrive. NO_WAIT aborts retry the *same input* after a jittered
//! exponential backoff, so contention behaves like the paper's closed-loop
//! clients.

use crate::coordinator::{self, strategy_for, Coord, CoordinatorProtocol, Phase};
use crate::input::{InputSource, ProcRegistry, TxnInput};
use crate::migration::{Migration, MigrationJob};
use crate::msg::Msg;
use crate::protocol::Protocol;
use chiller_adaptive::monitor::{ContentionMonitor, EpochSummary};
use chiller_adaptive::Directory;
use chiller_common::config::SimConfig;
use chiller_common::ids::{NodeId, PartitionId, RecordId, TxnId};
use chiller_common::metrics::MetricSet;
use chiller_common::rng::{derive_seed, seeded};
use chiller_common::time::{Duration, SimTime};
use chiller_common::value::Row;
use chiller_obs::{EventKind, HistoryRecorder, Tracer};
use chiller_simnet::{Actor, Ctx, Verb};
use chiller_sproc::ExecState;
use chiller_storage::placement::Placement;
use chiller_storage::store::PartitionStore;
use chiller_storage::wal::{Wal, WalRecord, WalStats};
use rand::rngs::StdRng;
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

const TOKEN_START: u64 = 1 << 32;
const TOKEN_RETRY: u64 = 2 << 32;
pub(crate) const TOKEN_MIG: u64 = 4 << 32;
pub(crate) const TOKEN_MASK: u64 = (1 << 32) - 1;

/// Hot-record membership driving the §3.3 region decision and the hot/cold
/// contention histograms: either the frozen seed hot set (the paper's
/// offline pipeline) or the adaptive directory, whose hot flags move at
/// epoch boundaries.
#[derive(Clone)]
pub enum HotSet {
    Static(Arc<HashSet<RecordId>>),
    Adaptive(Arc<Directory>),
}

impl HotSet {
    #[inline]
    pub fn contains(&self, rid: &RecordId) -> bool {
        match self {
            HotSet::Static(s) => s.contains(rid),
            HotSet::Adaptive(d) => d.is_hot(*rid),
        }
    }

    /// The adaptive directory, when this engine runs with adaptation on.
    pub fn directory(&self) -> Option<&Arc<Directory>> {
        match self {
            HotSet::Static(_) => None,
            HotSet::Adaptive(d) => Some(d),
        }
    }
}

/// Everything needed to construct an engine node.
pub struct EngineParams {
    pub node: NodeId,
    pub num_nodes: usize,
    pub protocol: Protocol,
    pub config: SimConfig,
    pub registry: Arc<ProcRegistry>,
    pub placement: Arc<dyn Placement + Send + Sync>,
    pub hot: HotSet,
    pub store: PartitionStore,
    pub replicas: HashMap<PartitionId, PartitionStore>,
    pub source: Box<dyn InputSource>,
    /// Present when the cluster runs with online adaptation.
    pub monitor: Option<ContentionMonitor>,
    /// Lifecycle tracer for this engine (disabled unless the cluster
    /// enables tracing; see `chiller_obs`).
    pub tracer: Tracer,
    /// Observation recorder for serializability checking (disabled unless
    /// the cluster enables `CHILLER_CHECK`; see `chiller_obs::history`).
    pub recorder: HistoryRecorder,
    /// Rows the engine loads into its own stores at `on_start` instead of
    /// the builder loading them eagerly. On the threaded backend with
    /// core pinning, `on_start` runs on the already-pinned engine thread,
    /// so the first touch of the row memory lands on that core's NUMA
    /// node. Empty (the default) means everything was loaded eagerly.
    pub staged: StagedRows,
    /// Per-engine redo log, present iff the cluster runs durable
    /// (`ClusterBuilder::durable` / `CHILLER_WAL`). `None` keeps every
    /// logging site a single branch on this option — the same off-path
    /// contract as the tracer and recorder.
    pub wal: Option<Wal>,
    /// First value of the engine's transaction sequence counter. Recovery
    /// sets this to a fresh epoch band (`epoch << 32`) so post-restart
    /// `TxnId`s can never collide with pre-crash ones — read-only
    /// transactions leave no log trace, so scanning the WAL for the max
    /// used sequence would not be enough.
    pub txn_seq_start: u64,
}

/// Deferred initial rows for first-touch locality (see
/// [`EngineParams::staged`]): primary rows for this node's own partition
/// plus the replica rows it holds for other partitions.
#[derive(Debug, Clone, Default)]
pub struct StagedRows {
    /// Rows of this node's primary partition.
    pub primary: Vec<(RecordId, Row)>,
    /// Rows of replicated partitions this node holds copies of.
    pub replicas: Vec<(PartitionId, RecordId, Row)>,
}

impl StagedRows {
    /// Whether there is nothing staged.
    pub fn is_empty(&self) -> bool {
        self.primary.is_empty() && self.replicas.is_empty()
    }
}

/// Summary handed to the experiment harness after a run.
#[derive(Debug, Clone)]
pub struct EngineReport {
    pub node: NodeId,
    pub metrics: MetricSet,
}

/// One simulated node: partition storage + execution engine shell.
pub struct EngineActor {
    pub(crate) node: NodeId,
    pub(crate) num_nodes: usize,
    /// The active coordinator strategy (stateless; selected from the
    /// configured [`Protocol`] at construction).
    pub(crate) strategy: &'static dyn CoordinatorProtocol,
    pub(crate) config: SimConfig,
    pub(crate) registry: Arc<ProcRegistry>,
    pub(crate) placement: Arc<dyn Placement + Send + Sync>,
    pub(crate) hot: HotSet,
    pub(crate) store: PartitionStore,
    pub(crate) replicas: HashMap<PartitionId, PartitionStore>,
    source: Box<dyn InputSource>,
    pub(crate) rng: StdRng,
    pub(crate) txn_seq: u64,
    pub(crate) txns: HashMap<TxnId, Coord>,
    /// Inputs waiting for their retry backoff, per slot.
    retries: HashMap<usize, (TxnInput, u32, SimTime)>,
    /// When false, slots finishing their transaction do not pull new input
    /// (used to drain the cluster for invariant checks).
    pub(crate) accepting: bool,
    pub(crate) metrics: MetricSet,
    /// Contention monitor (present iff the cluster adapts online).
    pub(crate) monitor: Option<ContentionMonitor>,
    /// Lifecycle tracer (no-op unless the cluster enables tracing).
    pub(crate) tracer: Tracer,
    /// Observation recorder (no-op unless the cluster enables checking).
    pub(crate) recorder: HistoryRecorder,
    /// In-flight migrations this engine coordinates (destination side).
    pub(crate) migrations: HashMap<TxnId, Migration>,
    /// Migration jobs waiting out a NO_WAIT retry backoff.
    pub(crate) mig_retries: HashMap<u64, MigrationJob>,
    pub(crate) mig_seq: u64,
    /// Records this partition used to own that migrated elsewhere: a miss
    /// on one of these is a stale-routing race, answered as a retryable
    /// conflict so the coordinator re-resolves the placement. Bounded by
    /// the number of migrations out of this partition over the run.
    pub(crate) migrated_out: HashSet<RecordId>,
    /// Initial rows deferred to `on_start` for first-touch locality
    /// (drained on the first start; see [`EngineParams::staged`]).
    staged: StagedRows,
    /// Redo log (durable clusters only; see [`EngineParams::wal`]).
    pub(crate) wal: Option<Wal>,
}

impl EngineActor {
    pub fn new(params: EngineParams) -> Self {
        let seed = derive_seed(params.config.seed, 0xE26_0000 + params.node.0 as u64);
        EngineActor {
            node: params.node,
            num_nodes: params.num_nodes,
            strategy: strategy_for(params.protocol),
            config: params.config,
            registry: params.registry,
            placement: params.placement,
            hot: params.hot,
            store: params.store,
            replicas: params.replicas,
            source: params.source,
            rng: seeded(seed),
            txn_seq: params.txn_seq_start,
            txns: HashMap::new(),
            retries: HashMap::new(),
            accepting: true,
            metrics: MetricSet::new(),
            monitor: params.monitor,
            tracer: params.tracer,
            recorder: params.recorder,
            migrations: HashMap::new(),
            mig_retries: HashMap::new(),
            mig_seq: 0,
            migrated_out: HashSet::new(),
            staged: params.staged,
            wal: params.wal,
        }
    }

    /// The protocol this engine runs (derived from the active strategy).
    pub fn protocol(&self) -> Protocol {
        self.strategy.protocol()
    }

    /// Stop pulling new inputs; in-flight transactions run to completion
    /// (retries of already-started inputs still happen so no locks leak).
    pub fn stop_accepting(&mut self) {
        self.accepting = false;
    }

    pub fn report(&self) -> EngineReport {
        EngineReport {
            node: self.node,
            metrics: self.metrics.clone(),
        }
    }

    pub fn metrics(&self) -> &MetricSet {
        &self.metrics
    }

    pub fn store(&self) -> &PartitionStore {
        &self.store
    }

    pub fn replica_store(&self, p: PartitionId) -> Option<&PartitionStore> {
        self.replicas.get(&p)
    }

    /// Number of transactions currently open on this engine (diagnostics).
    pub fn open_txns(&self) -> usize {
        self.txns.len()
    }

    /// Drain this engine's contention monitor at an epoch boundary.
    /// Returns `None` when the cluster runs without adaptation.
    pub fn take_epoch_summary(&mut self) -> Option<EpochSummary> {
        let node = self.node;
        self.monitor.as_mut().map(|m| m.end_epoch(node))
    }

    /// Records with a migration currently in flight or queued for retry at
    /// this engine (the planner must not re-plan them).
    pub fn migrating_records(&self) -> Vec<RecordId> {
        let mut v: Vec<RecordId> = self
            .migrations
            .values()
            .map(|m| m.job.record)
            .chain(self.mig_retries.values().map(|j| j.record))
            .collect();
        v.sort();
        v.dedup();
        v
    }

    /// Migrations currently open on this engine (diagnostics).
    pub fn open_migrations(&self) -> usize {
        self.migrations.len() + self.mig_retries.len()
    }

    /// Clear accumulated metrics (used to discard warm-up).
    pub fn reset_metrics(&mut self) {
        self.metrics = MetricSet::new();
    }

    /// Whether this engine logs to a WAL (durable cluster).
    pub fn durable(&self) -> bool {
        self.wal.is_some()
    }

    /// Append one record to the redo log; a single branch when durability
    /// is off. Group commit lives inside the [`Wal`]: the append fsyncs
    /// only when the buffered commit marks reach `CHILLER_FSYNC_BATCH`
    /// (batch-boundary flushes come from [`Actor::on_batch_end`] and the
    /// control plane's pause points).
    #[inline]
    pub(crate) fn wal_append(&mut self, rec: WalRecord) {
        if let Some(wal) = self.wal.as_mut() {
            wal.append(&rec);
        }
    }

    /// Flush (write + fsync) anything buffered in the redo log. The
    /// control plane calls this at every pause point — phase boundaries,
    /// quiescence, and crash injection — so "paused" always implies
    /// "durable up to here".
    pub fn wal_flush(&mut self) {
        if let Some(wal) = self.wal.as_mut() {
            wal.flush();
        }
    }

    /// The redo log's counters, when durability is on.
    pub fn wal_stats(&self) -> Option<WalStats> {
        self.wal.as_ref().map(|w| w.stats)
    }

    /// Checkpoint this engine's primary partition to `path` and truncate
    /// the redo log (its records are now redundant — the snapshot contains
    /// every applied write and the complete version map). Only sound on a
    /// quiesced engine: an in-flight transaction elsewhere could still
    /// need this node's `InnerCommit`/`Decide` records to resolve.
    pub fn checkpoint_to(&mut self, path: &std::path::Path) -> std::io::Result<()> {
        chiller_storage::wal::write_checkpoint(path, &self.store)?;
        if let Some(wal) = self.wal.as_mut() {
            wal.truncate();
        }
        Ok(())
    }

    pub(crate) fn op_cpu(&self) -> Duration {
        Duration::from_nanos(self.config.engine.op_cpu_ns)
    }

    pub(crate) fn txn_cpu(&self) -> Duration {
        Duration::from_nanos(self.config.engine.txn_overhead_cpu_ns)
    }

    /// Nodes holding replicas of partition `p` (primary excluded).
    pub(crate) fn replica_nodes(&self, p: PartitionId) -> Vec<NodeId> {
        let r = self
            .config
            .replication
            .replicas()
            .min(self.num_nodes.saturating_sub(1));
        (1..=r as u32)
            .map(|i| NodeId((p.0 + i) % self.num_nodes as u32))
            .collect()
    }

    pub(crate) fn proc_name(&self, input: &TxnInput) -> &'static str {
        self.registry.get(input.proc).name
    }

    // ------------------------------------------------------------------
    // Slot scheduling (closed-loop driver)
    // ------------------------------------------------------------------

    /// Schedule a fresh transaction on `slot` immediately (commit or final
    /// abort frees the slot).
    pub(crate) fn schedule_fresh_start(&mut self, ctx: &mut Ctx<'_, Msg>, slot: usize) {
        ctx.set_timer(Duration::ZERO, TOKEN_START | slot as u64);
    }

    /// Jittered exponential backoff after `attempts` NO_WAIT failures
    /// (fixed backoff lets retry storms phase-lock into livelock under
    /// heavy contention). Shared by transaction and migration retries.
    pub(crate) fn backoff_for(&mut self, attempts: u32) -> Duration {
        let exp = attempts.min(6);
        let base = self.config.engine.retry_backoff.as_nanos() << exp;
        let jitter = 0.5 + rand::Rng::gen::<f64>(&mut self.rng);
        Duration::from_nanos((base as f64 * jitter) as u64)
    }

    /// Schedule a retry of `input` on `slot` after a jittered exponential
    /// backoff. Returns the backoff chosen (for trace emission).
    pub(crate) fn schedule_retry(
        &mut self,
        ctx: &mut Ctx<'_, Msg>,
        slot: usize,
        input: TxnInput,
        attempts: u32,
        first_start: SimTime,
    ) -> Duration {
        let backoff = self.backoff_for(attempts);
        self.retries.insert(slot, (input, attempts, first_start));
        ctx.set_timer(backoff, TOKEN_RETRY | slot as u64);
        backoff
    }

    fn start_fresh(&mut self, ctx: &mut Ctx<'_, Msg>, slot: usize) {
        if !self.accepting {
            return;
        }
        let input = self.source.next_input(&mut self.rng, ctx.now());
        self.start_attempt(ctx, slot, input, 0, ctx.now());
    }

    /// Admit one transaction attempt: ask the strategy for the region
    /// split (§3.3 steps 1–2), then drive its first wave.
    fn start_attempt(
        &mut self,
        ctx: &mut Ctx<'_, Msg>,
        slot: usize,
        input: TxnInput,
        prior_attempts: u32,
        first_start: SimTime,
    ) {
        ctx.use_cpu(self.txn_cpu());
        self.txn_seq += 1;
        let txn = TxnId::new(self.node, self.txn_seq);
        let traced = self.tracer.traces_txn(self.txn_seq);
        if traced {
            self.tracer.record(
                ctx.now().as_nanos(),
                self.node,
                EventKind::TxnBegin {
                    txn,
                    proc: input.proc as u32,
                    attempt: prior_attempts + 1,
                },
            );
        }
        let proc = self.registry.get(input.proc).clone();
        let exec = ExecState::new(input.params.clone(), proc.num_ops());
        let strategy = self.strategy;
        let split = strategy.admission_split(self, &proc, &exec);
        let mut coord = Coord::new(
            slot,
            input,
            proc,
            exec,
            split,
            prior_attempts,
            first_start,
            traced,
        );
        coordinator::drive(self, ctx, txn, &mut coord);
        if coord.phase != Phase::Done {
            self.txns.insert(txn, coord);
        }
    }
}

impl Actor<Msg> for EngineActor {
    fn on_start(&mut self, ctx: &mut Ctx<'_, Msg>) {
        // Load any staged rows first — on the threaded backend this
        // thread is already pinned, so these first touches place the row
        // memory on the local NUMA node. No message can have been handled
        // yet, and remote reads arrive as messages, so the late load is
        // invisible to the protocols.
        if !self.staged.is_empty() {
            for (rid, row) in std::mem::take(&mut self.staged.primary) {
                self.store.load(rid, row);
            }
            for (p, rid, row) in std::mem::take(&mut self.staged.replicas) {
                self.replicas
                    .get_mut(&p)
                    .expect("staged replica row for an unheld partition")
                    .load(rid, row);
            }
        }
        // Stagger slot start-up slightly so engines do not phase-lock.
        for slot in 0..self.config.engine.concurrency {
            let jitter = (self.node.0 as u64 * 131 + slot as u64 * 57) % 997;
            ctx.set_timer(Duration::from_nanos(jitter), TOKEN_START | slot as u64);
        }
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_, Msg>, src: NodeId, _verb: Verb, msg: Msg) {
        if src != self.node && self.tracer.full() {
            self.tracer.record(
                ctx.now().as_nanos(),
                self.node,
                EventKind::RecvHop {
                    txn: msg.txn(),
                    src,
                    label: msg.kind_label(),
                },
            );
        }
        match msg {
            // Participant side: storage-owner handlers (protocol-agnostic
            // verb semantics; see `crate::participant`).
            Msg::LockRead { txn, req, items } => self.handle_lock_read(ctx, src, txn, req, items),
            Msg::CommitOuter {
                txn,
                writes,
                unlocks,
            } => self.handle_commit_outer(ctx, src, txn, writes, unlocks),
            Msg::AbortOuter { txn, unlocks } => self.handle_abort_outer(ctx, txn, unlocks),
            Msg::ExecInner {
                txn,
                proc,
                params,
                outer_outputs,
                inner_ops,
                inner_guards,
                expect_replica_acks: _,
            } => self.handle_exec_inner(
                ctx,
                src,
                txn,
                proc,
                params,
                outer_outputs,
                inner_ops,
                inner_guards,
            ),
            Msg::Replicate {
                txn,
                partition,
                writes,
                ack_coordinator,
            } => self.handle_replicate(ctx, txn, partition, writes, ack_coordinator),
            Msg::OccRead { txn, req, items } => self.handle_occ_read(ctx, src, txn, req, items),
            Msg::OccValidate { txn, items } => self.handle_occ_validate(ctx, src, txn, items),
            Msg::OccDecide {
                txn,
                commit,
                writes,
                latched,
            } => self.handle_occ_decide(ctx, src, txn, commit, writes, latched),

            // Migration participant side (source partition).
            Msg::MigrateLock { txn, record } => self.handle_migrate_lock(ctx, src, txn, record),
            Msg::MigrateFinish { txn, record } => self.handle_migrate_finish(ctx, src, txn, record),

            // Migration coordinator side (destination partition).
            response @ (Msg::MigrateLockResp { .. } | Msg::MigrateFinishAck { .. }) => {
                let txn = response.txn();
                self.on_migration_response(ctx, txn, response);
            }

            // Coordinator side: responses for an open transaction are
            // routed to the active protocol strategy.
            response @ (Msg::LockReadResp { .. }
            | Msg::OccReadResp { .. }
            | Msg::InnerResult { .. }
            | Msg::ReplicateAck { .. }
            | Msg::CommitOuterAck { .. }
            | Msg::OccDecideAck { .. }
            | Msg::OccValidateResp { .. }) => {
                let txn = response.txn();
                // Replication acks for migration transactions belong to the
                // migration state machine, not a coordinator entry.
                if self.migrations.contains_key(&txn) {
                    self.on_migration_response(ctx, txn, response);
                    return;
                }
                let Some(mut coord) = self.txns.remove(&txn) else {
                    return;
                };
                let strategy = self.strategy;
                strategy.on_response(self, ctx, src, txn, &mut coord, response);
                if coord.phase != Phase::Done {
                    self.txns.insert(txn, coord);
                }
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, Msg>, token: u64) {
        let slot = (token & TOKEN_MASK) as usize;
        if token & TOKEN_START != 0 {
            self.start_fresh(ctx, slot);
        } else if token & TOKEN_RETRY != 0 {
            if let Some((input, attempts, first_start)) = self.retries.remove(&slot) {
                self.start_attempt(ctx, slot, input, attempts, first_start);
            }
        } else if token & TOKEN_MIG != 0 {
            if let Some(job) = self.mig_retries.remove(&(token & TOKEN_MASK)) {
                self.attempt_migration(ctx, job);
            }
        }
    }

    fn on_batch_end(&mut self) {
        // Group commit's batch valve: hand buffered log bytes to the OS at
        // the same boundary remote sends flush on, but leave the fsync to
        // the commit-mark counter (`CHILLER_FSYNC_BATCH`) — syncing every
        // batch would put one fsync on nearly every message round and
        // erase the amortization. One branch on the option when
        // durability is off.
        if let Some(wal) = self.wal.as_mut() {
            wal.write_through();
        }
    }
}
