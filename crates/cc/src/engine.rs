//! The execution engine: one actor per node, playing coordinator for
//! transactions it originates and participant for storage it owns.
//!
//! ## Coordinator model
//!
//! A stored procedure executes in **dependency waves**: every operation
//! whose key is resolvable and whose pk-dependencies are satisfied is issued
//! (batched per partition) in parallel; responses unlock the next wave. This
//! mirrors how a NAM-DB coordinator overlaps one-sided verbs, and gives
//! 2-wave execution for typical TPC-C transactions.
//!
//! Per protocol:
//! * **2PL** — waves issue combined lock+read verbs; once every op holds its
//!   lock, commit write-backs + unlocks go out with the prepare piggybacked
//!   (Figure 3a), alongside replication to each written partition's
//!   replicas.
//! * **Chiller** — the §3.3 run-time decision splits ops into outer/inner.
//!   Waves cover the outer region only; once outer locks are held and outer
//!   guards pass, the inner region is delegated by RPC to the inner host,
//!   which commits unilaterally and fire-and-forget replicates (§5). The
//!   coordinator resumes outer phase 2 after the inner result *and* the
//!   inner replicas' acks arrive, then commits the outer region.
//! * **OCC** — waves issue lock-free versioned reads; commit runs a parallel
//!   validate round (latch write set, check versions) followed by a decide
//!   round.
//!
//! Up to `concurrency` transactions are open per engine (the paper's
//! co-routines): the actor interleaves their state machines as messages
//! arrive. NO_WAIT aborts retry the *same input* after a backoff, so
//! contention behaves like the paper's closed-loop clients.

use crate::input::{InputSource, ProcRegistry, TxnInput};
use crate::msg::{LockReadItem, Msg, OccReadItem, ValidateItem, WriteItem, WriteKind};
use crate::protocol::Protocol;
use chiller_common::config::SimConfig;
use chiller_common::ids::{NodeId, OpId, PartitionId, RecordId, TxnId};
use chiller_common::metrics::MetricSet;
use chiller_common::rng::{derive_seed, seeded};
use chiller_common::time::{Duration, SimTime};
use chiller_common::value::Row;
use chiller_simnet::{Actor, Ctx, Verb};
use chiller_sproc::decision::GuardSite;
use chiller_sproc::op::OpKind;
use chiller_sproc::{decide_regions, ExecState, Procedure, RegionSplit};
use chiller_storage::lock::LockMode;
use chiller_storage::placement::Placement;
use chiller_storage::store::PartitionStore;
use rand::rngs::StdRng;
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::sync::Arc;

const TOKEN_START: u64 = 1 << 32;
const TOKEN_RETRY: u64 = 2 << 32;
const TOKEN_MASK: u64 = (1 << 32) - 1;

/// Per-operation execution bookkeeping.
#[derive(Debug, Clone, Default)]
struct OpState {
    issued: bool,
    responded: bool,
    computed: bool,
    record: Option<RecordId>,
    partition: Option<PartitionId>,
    raw_row: Option<Row>,
    /// Version observed at read time (OCC only).
    version: u64,
}

/// Why a transaction attempt failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FailKind {
    /// NO_WAIT lock conflict or OCC validation failure: retry.
    Transient,
    /// Guard violation / existence fault: final.
    Logic,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// Waves in flight (lock+read or versioned read).
    Executing,
    /// Chiller: waiting for the inner result + inner replica acks.
    InnerWait,
    /// OCC: waiting for validate responses.
    Validating,
    /// Waiting for commit/decide/replication acks.
    Committing,
    /// OCC abort: waiting for latch-release acks before retrying.
    Aborting,
    /// Terminal: the coordinator entry must not be reinserted.
    Done,
}

/// Coordinator state for one in-flight transaction attempt.
struct Coord {
    slot: usize,
    input: TxnInput,
    proc: Arc<Procedure>,
    exec: ExecState,
    split: RegionSplit,
    ops: Vec<OpState>,
    guards_checked: Vec<bool>,
    phase: Phase,
    pending: usize,
    failed: Option<FailKind>,
    /// Request-id → ops carried by that in-flight access message.
    inflight: HashMap<u64, Vec<OpId>>,
    next_req: u64,
    /// Outer locks currently held.
    held_locks: Vec<(PartitionId, RecordId)>,
    /// Buffered writes (applied at commit).
    writes: Vec<(PartitionId, WriteItem)>,
    /// All partitions this attempt touched.
    participants: BTreeSet<PartitionId>,
    /// Chiller: inner-region progress.
    inner_sent: bool,
    inner_ok: bool,
    /// OCC: partitions that responded OK to validation (holding latches).
    validated_ok: Vec<PartitionId>,
    /// Retry bookkeeping (attempts includes the current one).
    attempts: u32,
    first_start: SimTime,
}

/// Everything needed to construct an engine node.
pub struct EngineParams {
    pub node: NodeId,
    pub num_nodes: usize,
    pub protocol: Protocol,
    pub config: SimConfig,
    pub registry: Arc<ProcRegistry>,
    pub placement: Arc<dyn Placement + Send + Sync>,
    pub hot: Arc<HashSet<RecordId>>,
    pub store: PartitionStore,
    pub replicas: HashMap<PartitionId, PartitionStore>,
    pub source: Box<dyn InputSource>,
}

/// Summary handed to the experiment harness after a run.
#[derive(Debug, Clone)]
pub struct EngineReport {
    pub node: NodeId,
    pub metrics: MetricSet,
}

/// One simulated node: partition storage + execution engine.
pub struct EngineActor {
    pub(crate) node: NodeId,
    num_nodes: usize,
    protocol: Protocol,
    pub(crate) config: SimConfig,
    pub(crate) registry: Arc<ProcRegistry>,
    placement: Arc<dyn Placement + Send + Sync>,
    pub(crate) hot: Arc<HashSet<RecordId>>,
    pub(crate) store: PartitionStore,
    pub(crate) replicas: HashMap<PartitionId, PartitionStore>,
    source: Box<dyn InputSource>,
    rng: StdRng,
    txn_seq: u64,
    txns: HashMap<TxnId, Coord>,
    /// Inputs waiting for their retry backoff, per slot.
    retries: HashMap<usize, (TxnInput, u32, SimTime)>,
    /// When false, slots finishing their transaction do not pull new input
    /// (used to drain the cluster for invariant checks).
    accepting: bool,
    pub(crate) metrics: MetricSet,
}

impl EngineActor {
    pub fn new(params: EngineParams) -> Self {
        let seed = derive_seed(params.config.seed, 0xE26_0000 + params.node.0 as u64);
        EngineActor {
            node: params.node,
            num_nodes: params.num_nodes,
            protocol: params.protocol,
            config: params.config,
            registry: params.registry,
            placement: params.placement,
            hot: params.hot,
            store: params.store,
            replicas: params.replicas,
            source: params.source,
            rng: seeded(seed),
            txn_seq: 0,
            txns: HashMap::new(),
            retries: HashMap::new(),
            accepting: true,
            metrics: MetricSet::new(),
        }
    }

    /// Stop pulling new inputs; in-flight transactions run to completion
    /// (retries of already-started inputs still happen so no locks leak).
    pub fn stop_accepting(&mut self) {
        self.accepting = false;
    }

    pub fn report(&self) -> EngineReport {
        EngineReport {
            node: self.node,
            metrics: self.metrics.clone(),
        }
    }

    pub fn metrics(&self) -> &MetricSet {
        &self.metrics
    }

    pub fn store(&self) -> &PartitionStore {
        &self.store
    }

    pub fn replica_store(&self, p: PartitionId) -> Option<&PartitionStore> {
        self.replicas.get(&p)
    }

    /// Number of transactions currently open on this engine (diagnostics).
    pub fn open_txns(&self) -> usize {
        self.txns.len()
    }

    fn op_cpu(&self) -> Duration {
        Duration::from_nanos(self.config.engine.op_cpu_ns)
    }

    fn txn_cpu(&self) -> Duration {
        Duration::from_nanos(self.config.engine.txn_overhead_cpu_ns)
    }

    /// Nodes holding replicas of partition `p` (primary excluded).
    pub(crate) fn replica_nodes(&self, p: PartitionId) -> Vec<NodeId> {
        let r = self
            .config
            .replication
            .replicas()
            .min(self.num_nodes.saturating_sub(1));
        (1..=r as u32)
            .map(|i| NodeId((p.0 + i) % self.num_nodes as u32))
            .collect()
    }

    fn proc_name(&self, input: &TxnInput) -> &'static str {
        self.registry.get(input.proc).name
    }

    // ------------------------------------------------------------------
    // Transaction lifecycle
    // ------------------------------------------------------------------

    fn start_fresh(&mut self, ctx: &mut Ctx<'_, Msg>, slot: usize) {
        if !self.accepting {
            return;
        }
        let input = self.source.next_input(&mut self.rng);
        self.start_attempt(ctx, slot, input, 0, ctx.now());
    }

    fn start_attempt(
        &mut self,
        ctx: &mut Ctx<'_, Msg>,
        slot: usize,
        input: TxnInput,
        prior_attempts: u32,
        first_start: SimTime,
    ) {
        ctx.use_cpu(self.txn_cpu());
        self.txn_seq += 1;
        let txn = TxnId::new(self.node, self.txn_seq);
        let proc = self.registry.get(input.proc).clone();
        let exec = ExecState::new(input.params.clone(), proc.num_ops());

        // §3.3 steps 1–2: region decision (Chiller only; baselines always
        // run single-region).
        let split = if self.protocol == Protocol::Chiller {
            let mut op_partition = Vec::with_capacity(proc.num_ops());
            let mut op_hot = Vec::with_capacity(proc.num_ops());
            for op in &proc.ops {
                let rid = op
                    .decision_key(&exec)
                    .map(|k| RecordId::new(op.table, k));
                op_partition.push(rid.map(|r| self.placement.partition_of(r)));
                op_hot.push(rid.map(|r| self.hot.contains(&r)).unwrap_or(false));
            }
            decide_regions(&proc, &op_partition, &op_hot)
        } else {
            RegionSplit::all_outer(&proc)
        };

        let n = proc.num_ops();
        let num_guards = proc.guards.len();
        self.txns.insert(
            txn,
            Coord {
                slot,
                input,
                proc,
                exec,
                split,
                ops: vec![OpState::default(); n],
                guards_checked: vec![false; num_guards],
                phase: Phase::Executing,
                pending: 0,
                failed: None,
                inflight: HashMap::new(),
                next_req: 0,
                held_locks: Vec::new(),
                writes: Vec::new(),
                participants: BTreeSet::new(),
                inner_sent: false,
                inner_ok: false,
                validated_ok: Vec::new(),
                attempts: prior_attempts + 1,
                first_start,
            },
        );
        self.drive(ctx, txn);
    }

    /// The set of ops the wave stage may issue: the outer region for
    /// two-region transactions, everything otherwise.
    fn in_scope(coord: &Coord, op: OpId) -> bool {
        if coord.split.is_two_region() {
            coord.split.outer_ops.contains(&op)
        } else {
            true
        }
    }

    /// Advance a transaction through its current stage. Takes the
    /// coordinator out of the map and reinserts it unless it finished.
    fn drive(&mut self, ctx: &mut Ctx<'_, Msg>, txn: TxnId) {
        let Some(mut coord) = self.txns.remove(&txn) else {
            return;
        };
        if coord.failed.is_none() {
            self.compute_pass(ctx, &mut coord);
            self.check_guards(&mut coord);
        }

        if coord.failed.is_some() {
            if coord.pending == 0 {
                self.abort_attempt(ctx, txn, coord);
            } else {
                // Wait for in-flight responses (they may grant locks that
                // must be released on abort).
                self.txns.insert(txn, coord);
            }
            return;
        }

        let issued = self.issue_wave(ctx, txn, &mut coord);
        if issued > 0 || coord.pending > 0 {
            self.txns.insert(txn, coord);
            return;
        }

        // Stage complete: everything in scope responded, nothing issuable.
        debug_assert!(
            (0..coord.proc.num_ops())
                .all(|i| !Self::in_scope(&coord, OpId(i as u16)) || coord.ops[i].responded),
            "wave stalled with unresolved in-scope ops"
        );

        match self.protocol {
            Protocol::Chiller if coord.split.is_two_region() && !coord.inner_sent => {
                self.send_inner(ctx, txn, &mut coord);
            }
            Protocol::Occ => {
                self.send_validate(ctx, txn, &mut coord);
            }
            _ => {
                self.commit_locked(ctx, txn, &mut coord);
            }
        }
        if coord.phase != Phase::Done {
            self.txns.insert(txn, coord);
        }
    }

    /// Finalize every op whose inputs are available: compute update rows,
    /// build insert rows, buffer writes.
    fn compute_pass(&mut self, ctx: &mut Ctx<'_, Msg>, coord: &mut Coord) {
        loop {
            let mut progressed = false;
            for i in 0..coord.proc.num_ops() {
                if coord.ops[i].computed || !coord.ops[i].responded {
                    continue;
                }
                let op = coord.proc.op(OpId(i as u16)).clone();
                if !op.value_deps.iter().all(|d| coord.exec.output(*d).is_some()) {
                    continue;
                }
                let rid = coord.ops[i].record.expect("responded implies resolved");
                let part = coord.ops[i].partition.expect("responded implies resolved");
                match &op.kind {
                    OpKind::Read { .. } => {} // output set at response time
                    OpKind::Update(apply) => {
                        ctx.use_cpu(self.op_cpu());
                        let raw = coord.ops[i].raw_row.clone().expect("update read a row");
                        let new = apply(&raw, &coord.exec);
                        coord.exec.set_output(op.id, new.clone());
                        coord
                            .writes
                            .push((part, WriteItem { record: rid, kind: WriteKind::Put(new) }));
                    }
                    OpKind::Insert(build) => {
                        ctx.use_cpu(self.op_cpu());
                        let row = build(&coord.exec);
                        coord
                            .writes
                            .push((part, WriteItem { record: rid, kind: WriteKind::Insert(row) }));
                    }
                    OpKind::Delete => {
                        coord
                            .writes
                            .push((part, WriteItem { record: rid, kind: WriteKind::Delete }));
                    }
                }
                coord.ops[i].computed = true;
                progressed = true;
            }
            if !progressed {
                break;
            }
        }
    }

    /// Evaluate every unchecked guard whose deps are available. Inner-site
    /// guards are the inner host's responsibility.
    fn check_guards(&mut self, coord: &mut Coord) {
        for gi in 0..coord.proc.guards.len() {
            if coord.guards_checked[gi] {
                continue;
            }
            if coord.split.is_two_region() && coord.split.guard_sites[gi] == GuardSite::Inner {
                continue;
            }
            let guard = &coord.proc.guards[gi];
            if !guard.deps.iter().all(|d| coord.exec.output(*d).is_some()) {
                continue;
            }
            coord.guards_checked[gi] = true;
            if (guard.check)(&coord.exec).is_err() {
                coord.failed = Some(FailKind::Logic);
                return;
            }
        }
    }

    pub(crate) fn lock_mode_for(op: &chiller_sproc::op::Op) -> LockMode {
        match &op.kind {
            OpKind::Read { for_update: false } => LockMode::Shared,
            _ => LockMode::Exclusive,
        }
    }

    /// Issue every in-scope op whose key is resolvable, batched per
    /// partition. Returns the number of messages sent.
    fn issue_wave(&mut self, ctx: &mut Ctx<'_, Msg>, txn: TxnId, coord: &mut Coord) -> usize {
        let mut per_partition: BTreeMap<PartitionId, Vec<OpId>> = BTreeMap::new();
        for i in 0..coord.proc.num_ops() {
            let id = OpId(i as u16);
            if coord.ops[i].issued || !Self::in_scope(coord, id) {
                continue;
            }
            let op = coord.proc.op(id);
            let Some(key) = op.key.resolve(&coord.exec) else {
                continue;
            };
            let rid = RecordId::new(op.table, key);
            let part = self.placement.partition_of(rid);
            coord.ops[i].issued = true;
            coord.ops[i].record = Some(rid);
            coord.ops[i].partition = Some(part);
            coord.participants.insert(part);
            per_partition.entry(part).or_default().push(id);
            ctx.use_cpu(self.op_cpu());
        }
        let n = per_partition.len();
        for (part, op_ids) in per_partition {
            let target = NodeId(part.0);
            coord.next_req += 1;
            let req = coord.next_req;
            coord.inflight.insert(req, op_ids.clone());
            let msg = match self.protocol {
                Protocol::Occ => Msg::OccRead {
                    txn,
                    req,
                    items: op_ids
                        .iter()
                        .map(|&id| {
                            let op = coord.proc.op(id);
                            OccReadItem {
                                op: id,
                                record: coord.ops[id.idx()].record.expect("just set"),
                                want_row: op.kind.produces_output(),
                            }
                        })
                        .collect(),
                },
                _ => Msg::LockRead {
                    txn,
                    req,
                    items: op_ids
                        .iter()
                        .map(|&id| {
                            let op = coord.proc.op(id);
                            LockReadItem {
                                op: id,
                                record: coord.ops[id.idx()].record.expect("just set"),
                                mode: Self::lock_mode_for(op),
                                want_row: op.kind.produces_output(),
                                expect_absent: matches!(op.kind, OpKind::Insert(_)),
                            }
                        })
                        .collect(),
                },
            };
            let verb = msg.verb();
            ctx.send(target, verb, msg);
            coord.pending += 1;
        }
        n
    }

    /// §3.3 step 4: ship the inner region to the inner host.
    fn send_inner(&mut self, ctx: &mut Ctx<'_, Msg>, txn: TxnId, coord: &mut Coord) {
        let host = coord.split.inner_host.expect("two-region");
        coord.participants.insert(host);
        let inner_has_writes = coord
            .split
            .inner_ops
            .iter()
            .any(|id| coord.proc.op(*id).kind.is_write());
        let expect_replica_acks = if inner_has_writes {
            self.replica_nodes(host).len()
        } else {
            0
        };
        let outer_outputs: Vec<(OpId, Row)> = (0..coord.proc.num_ops() as u16)
            .map(OpId)
            .filter_map(|id| coord.exec.output(id).map(|r| (id, r.clone())))
            .collect();
        let inner_guards: Vec<usize> = coord
            .split
            .guard_sites
            .iter()
            .enumerate()
            .filter(|(_, s)| **s == GuardSite::Inner)
            .map(|(i, _)| i)
            .collect();
        ctx.send(
            NodeId(host.0),
            Verb::Rpc,
            Msg::ExecInner {
                txn,
                proc: coord.input.proc,
                params: coord.input.params.clone(),
                outer_outputs,
                inner_ops: coord.split.inner_ops.clone(),
                inner_guards,
                expect_replica_acks,
            },
        );
        coord.inner_sent = true;
        coord.phase = Phase::InnerWait;
        coord.pending = 1 + expect_replica_acks;
    }

    /// Commit for lock-based execution (2PL, Chiller outer phase 2).
    fn commit_locked(&mut self, ctx: &mut Ctx<'_, Msg>, txn: TxnId, coord: &mut Coord) {
        debug_assert!(
            coord
                .ops
                .iter()
                .enumerate()
                .all(|(i, st)| !Self::in_scope(coord, OpId(i as u16)) || st.computed),
            "committing with uncomputed ops"
        );
        ctx.use_cpu(self.txn_cpu());
        coord.phase = Phase::Committing;
        coord.pending = 0;

        let mut writes_by_part: BTreeMap<PartitionId, Vec<WriteItem>> = BTreeMap::new();
        for (p, w) in coord.writes.drain(..) {
            writes_by_part.entry(p).or_default().push(w);
        }
        let mut unlocks_by_part: BTreeMap<PartitionId, Vec<RecordId>> = BTreeMap::new();
        for (p, rid) in coord.held_locks.drain(..) {
            unlocks_by_part.entry(p).or_default().push(rid);
        }
        let parts: BTreeSet<PartitionId> = writes_by_part
            .keys()
            .chain(unlocks_by_part.keys())
            .copied()
            .collect();
        for part in parts {
            let writes = writes_by_part.remove(&part).unwrap_or_default();
            let unlocks = unlocks_by_part.remove(&part).unwrap_or_default();
            if !writes.is_empty() {
                for replica in self.replica_nodes(part) {
                    ctx.send(
                        replica,
                        Verb::Rpc,
                        Msg::Replicate {
                            txn,
                            partition: part,
                            writes: writes.clone(),
                            ack_coordinator: true,
                        },
                    );
                    coord.pending += 1;
                }
            }
            ctx.send(
                NodeId(part.0),
                Verb::OneSided,
                Msg::CommitOuter { txn, writes, unlocks },
            );
            coord.pending += 1;
        }
        if coord.pending == 0 {
            self.finish_commit(ctx, txn, coord);
        }
    }

    /// OCC: parallel validation round.
    fn send_validate(&mut self, ctx: &mut Ctx<'_, Msg>, txn: TxnId, coord: &mut Coord) {
        ctx.use_cpu(self.txn_cpu());
        coord.phase = Phase::Validating;
        coord.pending = 0;
        coord.validated_ok.clear();
        let write_set: HashSet<RecordId> = coord.writes.iter().map(|(_, w)| w.record).collect();
        let mut items_by_part: BTreeMap<PartitionId, Vec<ValidateItem>> = BTreeMap::new();
        for st in &coord.ops {
            let (Some(rid), Some(part)) = (st.record, st.partition) else {
                continue;
            };
            let entry = items_by_part.entry(part).or_default();
            if let Some(existing) = entry.iter_mut().find(|it| it.record == rid) {
                existing.is_write |= write_set.contains(&rid);
                continue;
            }
            entry.push(ValidateItem {
                record: rid,
                version: st.version,
                is_write: write_set.contains(&rid),
            });
        }
        for (part, items) in items_by_part {
            ctx.send(NodeId(part.0), Verb::OneSided, Msg::OccValidate { txn, items });
            coord.pending += 1;
        }
        if coord.pending == 0 {
            self.finish_commit(ctx, txn, coord);
        }
    }

    /// OCC decide round after all validation responses are in.
    fn occ_decide(&mut self, ctx: &mut Ctx<'_, Msg>, txn: TxnId, coord: &mut Coord, commit: bool) {
        coord.phase = if commit { Phase::Committing } else { Phase::Aborting };
        coord.pending = 0;
        let write_set: HashSet<RecordId> = coord.writes.iter().map(|(_, w)| w.record).collect();
        let mut writes_by_part: BTreeMap<PartitionId, Vec<WriteItem>> = BTreeMap::new();
        for (p, w) in &coord.writes {
            writes_by_part.entry(*p).or_default().push(w.clone());
        }
        let targets: Vec<PartitionId> = if commit {
            coord.participants.iter().copied().collect()
        } else {
            coord.validated_ok.clone()
        };
        for part in targets {
            let writes = if commit {
                writes_by_part.remove(&part).unwrap_or_default()
            } else {
                Vec::new()
            };
            let latched: Vec<RecordId> = coord
                .ops
                .iter()
                .filter(|st| st.partition == Some(part))
                .filter_map(|st| st.record)
                .filter(|r| write_set.contains(r))
                .collect::<BTreeSet<_>>()
                .into_iter()
                .collect();
            if commit && !writes.is_empty() {
                for replica in self.replica_nodes(part) {
                    ctx.send(
                        replica,
                        Verb::Rpc,
                        Msg::Replicate {
                            txn,
                            partition: part,
                            writes: writes.clone(),
                            ack_coordinator: true,
                        },
                    );
                    coord.pending += 1;
                }
            }
            if !commit && latched.is_empty() {
                continue;
            }
            ctx.send(
                NodeId(part.0),
                Verb::OneSided,
                Msg::OccDecide { txn, commit, writes, latched },
            );
            coord.pending += 1;
        }
        if coord.pending == 0 && commit {
            self.finish_commit(ctx, txn, coord);
        }
    }

    /// Account a successful commit and free the slot. Sets `Phase::Done`.
    fn finish_commit(&mut self, ctx: &mut Ctx<'_, Msg>, _txn: TxnId, coord: &mut Coord) {
        let name = self.proc_name(&coord.input).to_owned();
        let distributed = coord.participants.len() > 1;
        let stats = self.metrics.type_stats(&name);
        stats.commits += 1;
        if distributed {
            stats.distributed_commits += 1;
        }
        let latency = ctx.now().saturating_since(coord.first_start);
        self.metrics.latency.record_duration(latency);
        coord.phase = Phase::Done;
        ctx.set_timer(Duration::ZERO, TOKEN_START | coord.slot as u64);
    }

    /// Abort the current attempt: release outer locks, account, and retry
    /// (transient) or give up (logic). Consumes the coordinator.
    fn abort_attempt(&mut self, ctx: &mut Ctx<'_, Msg>, txn: TxnId, mut coord: Coord) {
        let mut unlocks_by_part: BTreeMap<PartitionId, Vec<RecordId>> = BTreeMap::new();
        for (p, rid) in coord.held_locks.drain(..) {
            unlocks_by_part.entry(p).or_default().push(rid);
        }
        for (part, unlocks) in unlocks_by_part {
            ctx.send(NodeId(part.0), Verb::OneSided, Msg::AbortOuter { txn, unlocks });
        }
        let kind = coord.failed.expect("abort without failure");
        let name = self.proc_name(&coord.input).to_owned();
        let slot = coord.slot;
        match kind {
            FailKind::Transient => {
                self.metrics.type_stats(&name).aborts += 1;
                if coord.attempts >= self.config.engine.max_retries {
                    ctx.set_timer(Duration::ZERO, TOKEN_START | slot as u64);
                } else {
                    // Jittered exponential backoff: fixed backoff lets
                    // NO_WAIT retry storms phase-lock into livelock under
                    // heavy contention.
                    let exp = coord.attempts.min(6);
                    let base = self.config.engine.retry_backoff.as_nanos() << exp;
                    let jitter = 0.5 + rand::Rng::gen::<f64>(&mut self.rng);
                    let backoff = Duration::from_nanos((base as f64 * jitter) as u64);
                    self.retries
                        .insert(slot, (coord.input, coord.attempts, coord.first_start));
                    ctx.set_timer(backoff, TOKEN_RETRY | slot as u64);
                }
            }
            FailKind::Logic => {
                self.metrics.type_stats(&name).logic_aborts += 1;
                ctx.set_timer(Duration::ZERO, TOKEN_START | slot as u64);
            }
        }
    }

    // ------------------------------------------------------------------
    // Coordinator-side response handlers
    // ------------------------------------------------------------------

    fn on_lock_read_resp(
        &mut self,
        ctx: &mut Ctx<'_, Msg>,
        txn: TxnId,
        req: u64,
        granted: bool,
        missing: Option<RecordId>,
        rows: Vec<(OpId, Row)>,
    ) {
        let Some(mut coord) = self.txns.remove(&txn) else {
            return;
        };
        coord.pending -= 1;
        ctx.use_cpu(self.op_cpu());
        let ops = coord.inflight.remove(&req).expect("unknown request id");
        if granted {
            for &id in &ops {
                let st = &mut coord.ops[id.idx()];
                st.responded = true;
                coord
                    .held_locks
                    .push((st.partition.expect("issued"), st.record.expect("issued")));
            }
            for (op_id, row) in rows {
                let st = &mut coord.ops[op_id.idx()];
                st.raw_row = Some(row.clone());
                if matches!(coord.proc.op(op_id).kind, OpKind::Read { .. }) {
                    coord.exec.set_output(op_id, row);
                }
            }
        } else if missing.is_some() {
            coord.failed = Some(FailKind::Logic);
        } else {
            coord.failed = Some(FailKind::Transient);
        }
        self.txns.insert(txn, coord);
        self.drive(ctx, txn);
    }

    fn on_occ_read_resp(
        &mut self,
        ctx: &mut Ctx<'_, Msg>,
        txn: TxnId,
        req: u64,
        rows: Vec<(OpId, Option<Row>, u64)>,
    ) {
        let Some(mut coord) = self.txns.remove(&txn) else {
            return;
        };
        coord.pending -= 1;
        ctx.use_cpu(self.op_cpu());
        coord.inflight.remove(&req);
        for (op_id, row, version) in rows {
            let st = &mut coord.ops[op_id.idx()];
            st.responded = true;
            st.version = version;
            let kind = coord.proc.op(op_id).kind.clone();
            match (row, kind) {
                (Some(r), OpKind::Read { .. }) => {
                    coord.ops[op_id.idx()].raw_row = Some(r.clone());
                    coord.exec.set_output(op_id, r);
                }
                (Some(r), OpKind::Update(_)) => {
                    coord.ops[op_id.idx()].raw_row = Some(r);
                }
                (None, OpKind::Insert(_)) => {}
                (Some(_), OpKind::Insert(_)) => {
                    coord.failed = Some(FailKind::Logic); // duplicate key
                }
                (Some(r), OpKind::Delete) => {
                    coord.ops[op_id.idx()].raw_row = Some(r);
                }
                (None, OpKind::Delete) => {} // validated by version at commit
                (None, _) => {
                    coord.failed = Some(FailKind::Logic); // record missing
                }
            }
        }
        self.txns.insert(txn, coord);
        self.drive(ctx, txn);
    }

    fn on_inner_result(
        &mut self,
        ctx: &mut Ctx<'_, Msg>,
        txn: TxnId,
        committed: bool,
        outputs: Vec<(OpId, Row)>,
        retryable: bool,
    ) {
        let Some(mut coord) = self.txns.remove(&txn) else {
            return;
        };
        ctx.use_cpu(self.op_cpu());
        coord.pending -= 1;
        if committed {
            coord.inner_ok = true;
            for (op, row) in outputs {
                coord.exec.set_output(op, row);
            }
            for id in coord.split.inner_ops.clone() {
                coord.ops[id.idx()].responded = true;
                coord.ops[id.idx()].computed = true;
            }
            if coord.pending == 0 {
                self.compute_pass(ctx, &mut coord);
                self.commit_locked(ctx, txn, &mut coord);
            }
            if coord.phase != Phase::Done {
                self.txns.insert(txn, coord);
            }
        } else {
            coord.failed = Some(if retryable {
                FailKind::Transient
            } else {
                FailKind::Logic
            });
            // Inner replicas never replicate on abort: drop their count.
            coord.pending = 0;
            self.abort_attempt(ctx, txn, coord);
        }
    }

    fn on_replicate_ack(&mut self, ctx: &mut Ctx<'_, Msg>, txn: TxnId) {
        let Some(mut coord) = self.txns.remove(&txn) else {
            return;
        };
        coord.pending = coord.pending.saturating_sub(1);
        if coord.pending == 0 {
            match coord.phase {
                Phase::InnerWait if coord.inner_ok => {
                    self.compute_pass(ctx, &mut coord);
                    self.commit_locked(ctx, txn, &mut coord);
                }
                Phase::Committing => self.finish_commit(ctx, txn, &mut coord),
                _ => {}
            }
        }
        if coord.phase != Phase::Done {
            self.txns.insert(txn, coord);
        }
    }

    fn on_commit_ack(&mut self, ctx: &mut Ctx<'_, Msg>, txn: TxnId) {
        let Some(mut coord) = self.txns.remove(&txn) else {
            return;
        };
        coord.pending = coord.pending.saturating_sub(1);
        if coord.pending == 0 {
            match coord.phase {
                Phase::Committing => {
                    self.finish_commit(ctx, txn, &mut coord);
                }
                Phase::Aborting => {
                    self.abort_attempt(ctx, txn, coord);
                    return;
                }
                _ => {}
            }
        }
        if coord.phase != Phase::Done {
            self.txns.insert(txn, coord);
        }
    }

    fn on_validate_resp(&mut self, ctx: &mut Ctx<'_, Msg>, src: NodeId, txn: TxnId, ok: bool) {
        let Some(mut coord) = self.txns.remove(&txn) else {
            return;
        };
        ctx.use_cpu(self.op_cpu());
        coord.pending -= 1;
        if ok {
            coord.validated_ok.push(PartitionId(src.0));
        } else {
            coord.failed = Some(FailKind::Transient);
        }
        if coord.pending > 0 {
            self.txns.insert(txn, coord);
            return;
        }
        let commit = coord.failed.is_none();
        self.occ_decide(ctx, txn, &mut coord, commit);
        if !commit && coord.pending == 0 {
            self.abort_attempt(ctx, txn, coord);
            return;
        }
        if coord.phase != Phase::Done {
            self.txns.insert(txn, coord);
        }
    }
}

impl Actor<Msg> for EngineActor {
    fn on_start(&mut self, ctx: &mut Ctx<'_, Msg>) {
        // Stagger slot start-up slightly so engines do not phase-lock.
        for slot in 0..self.config.engine.concurrency {
            let jitter = (self.node.0 as u64 * 131 + slot as u64 * 57) % 997;
            ctx.set_timer(Duration::from_nanos(jitter), TOKEN_START | slot as u64);
        }
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_, Msg>, src: NodeId, _verb: Verb, msg: Msg) {
        match msg {
            // Participant side.
            Msg::LockRead { txn, req, items } => self.handle_lock_read(ctx, src, txn, req, items),
            Msg::CommitOuter { txn, writes, unlocks } => {
                self.handle_commit_outer(ctx, src, txn, writes, unlocks)
            }
            Msg::AbortOuter { txn, unlocks } => self.handle_abort_outer(ctx, txn, unlocks),
            Msg::ExecInner {
                txn,
                proc,
                params,
                outer_outputs,
                inner_ops,
                inner_guards,
                expect_replica_acks: _,
            } => self.handle_exec_inner(
                ctx,
                src,
                txn,
                proc,
                params,
                outer_outputs,
                inner_ops,
                inner_guards,
            ),
            Msg::Replicate { txn, partition, writes, ack_coordinator } => {
                self.handle_replicate(ctx, txn, partition, writes, ack_coordinator)
            }
            Msg::OccRead { txn, req, items } => self.handle_occ_read(ctx, src, txn, req, items),
            Msg::OccValidate { txn, items } => self.handle_occ_validate(ctx, src, txn, items),
            Msg::OccDecide { txn, commit, writes, latched } => {
                self.handle_occ_decide(ctx, src, txn, commit, writes, latched)
            }

            // Coordinator side.
            Msg::LockReadResp { txn, req, granted, conflict: _, missing, rows } => {
                self.on_lock_read_resp(ctx, txn, req, granted, missing, rows)
            }
            Msg::OccReadResp { txn, req, rows } => self.on_occ_read_resp(ctx, txn, req, rows),
            Msg::InnerResult { txn, committed, outputs, retryable } => {
                self.on_inner_result(ctx, txn, committed, outputs, retryable)
            }
            Msg::ReplicateAck { txn } => self.on_replicate_ack(ctx, txn),
            Msg::CommitOuterAck { txn } | Msg::OccDecideAck { txn } => {
                self.on_commit_ack(ctx, txn)
            }
            Msg::OccValidateResp { txn, ok, conflict: _ } => {
                self.on_validate_resp(ctx, src, txn, ok)
            }
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, Msg>, token: u64) {
        let slot = (token & TOKEN_MASK) as usize;
        if token & TOKEN_START != 0 {
            self.start_fresh(ctx, slot);
        } else if token & TOKEN_RETRY != 0 {
            if let Some((input, attempts, first_start)) = self.retries.remove(&slot) {
                self.start_attempt(ctx, slot, input, attempts, first_start);
            }
        }
    }
}

impl EngineActor {
    /// Clear accumulated metrics (used to discard warm-up).
    pub fn reset_metrics(&mut self) {
        self.metrics = MetricSet::new();
    }
}
