//! TPC-C schema: tables, composite-key packing, warehouse placement.
//!
//! Every key leads with a 16-bit warehouse id in the top bits, so the
//! warehouse placement can extract it uniformly (`key >> 48`).

use chiller_common::ids::{PartitionId, RecordId};
use chiller_storage::placement::Placement;
use chiller_storage::schema::{Schema, TableDef};

/// Table ids.
pub mod tables {
    use chiller_common::ids::TableId;
    pub const WAREHOUSE: TableId = TableId(1);
    pub const DISTRICT: TableId = TableId(2);
    pub const CUSTOMER: TableId = TableId(3);
    pub const HISTORY: TableId = TableId(4);
    pub const NEW_ORDER: TableId = TableId(5);
    pub const ORDER: TableId = TableId(6);
    pub const ORDER_LINE: TableId = TableId(7);
    pub const STOCK: TableId = TableId(8);
}

/// Key packing: warehouse id in bits 48..64 of every key.
pub mod keys {
    const W_SHIFT: u32 = 48;

    #[inline]
    pub fn warehouse(w: u64) -> u64 {
        w << W_SHIFT
    }

    #[inline]
    pub fn district(w: u64, d: u64) -> u64 {
        debug_assert!(d < 256);
        (w << W_SHIFT) | (d << 40)
    }

    #[inline]
    pub fn customer(w: u64, d: u64, c: u64) -> u64 {
        debug_assert!(c < (1 << 24));
        (w << W_SHIFT) | (d << 40) | (c << 16)
    }

    #[inline]
    pub fn order(w: u64, d: u64, o: u64) -> u64 {
        debug_assert!(o < (1 << 32));
        (w << W_SHIFT) | (d << 40) | (o << 8)
    }

    #[inline]
    pub fn new_order(w: u64, d: u64, o: u64) -> u64 {
        order(w, d, o)
    }

    #[inline]
    pub fn order_line(w: u64, d: u64, o: u64, line: u64) -> u64 {
        debug_assert!(line < 256 && o < (1 << 32));
        // o gets 32 bits (8..40), line the low 8.
        (w << W_SHIFT) | (d << 40) | (o << 8) | line
    }

    #[inline]
    pub fn stock(w: u64, i: u64) -> u64 {
        debug_assert!(i < (1 << 32));
        (w << W_SHIFT) | i
    }

    #[inline]
    pub fn history(w: u64, d: u64, seq: u64) -> u64 {
        debug_assert!(seq < (1 << 40));
        (w << W_SHIFT) | (d << 40) | seq
    }

    /// Warehouse id of any TPC-C key.
    #[inline]
    pub fn warehouse_of(key: u64) -> u64 {
        key >> W_SHIFT
    }
}

/// Column layouts (indices documented in the row builders of `gen`).
pub fn tpcc_schema() -> Schema {
    use tables::*;
    let mut s = Schema::new();
    s.add(TableDef::new(
        WAREHOUSE,
        "warehouse",
        vec!["w_id", "w_tax", "w_ytd"],
    ));
    s.add(TableDef::new(
        DISTRICT,
        "district",
        vec![
            "d_w_id",
            "d_id",
            "d_tax",
            "d_ytd",
            "d_next_o_id",
            "d_last_delivered",
        ],
    ));
    s.add(TableDef::new(
        CUSTOMER,
        "customer",
        vec![
            "c_w_id",
            "c_d_id",
            "c_id",
            "c_balance",
            "c_ytd_payment",
            "c_payment_cnt",
            "c_delivery_cnt",
        ],
    ));
    s.add(TableDef::new(
        HISTORY,
        "history",
        vec!["h_c_key", "h_amount"],
    ));
    s.add(TableDef::new(NEW_ORDER, "new_order", vec!["no_o_id"]));
    s.add(TableDef::new(
        ORDER,
        "order",
        vec!["o_id", "o_c_id", "o_carrier_id", "o_ol_cnt", "o_total"],
    ));
    s.add(TableDef::new(
        ORDER_LINE,
        "order_line",
        vec!["ol_i_id", "ol_supply_w_id", "ol_quantity", "ol_amount"],
    ));
    s.add(TableDef::new(
        STOCK,
        "stock",
        vec![
            "s_i_id",
            "s_quantity",
            "s_ytd",
            "s_order_cnt",
            "s_remote_cnt",
        ],
    ));
    s
}

/// Warehouse partitioning: warehouse `w` lives on partition `(w-1) % k`
/// (with one warehouse per engine in the paper's setup, this is exactly
/// "partitioned by warehouse").
#[derive(Debug, Clone)]
pub struct TpccPlacement {
    pub partitions: u32,
}

impl TpccPlacement {
    pub fn new(partitions: u32) -> Self {
        assert!(partitions > 0);
        TpccPlacement { partitions }
    }
}

impl Placement for TpccPlacement {
    fn partition_of(&self, record: RecordId) -> PartitionId {
        let w = keys::warehouse_of(record.key);
        debug_assert!(w >= 1, "TPC-C warehouse ids are 1-based: {record:?}");
        PartitionId(((w - 1) % self.partitions as u64) as u32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keys_roundtrip_warehouse() {
        for key in [
            keys::warehouse(7),
            keys::district(7, 9),
            keys::customer(7, 9, 12345),
            keys::order(7, 9, 1 << 20),
            keys::order_line(7, 9, 1 << 20, 13),
            keys::stock(7, 424242),
            keys::history(7, 9, (1 << 40) - 1),
        ] {
            assert_eq!(keys::warehouse_of(key), 7);
        }
    }

    #[test]
    fn keys_are_distinct_within_tables() {
        assert_ne!(keys::district(1, 2), keys::district(1, 3));
        assert_ne!(keys::order(1, 2, 3), keys::order(1, 2, 4));
        assert_ne!(keys::order_line(1, 2, 3, 1), keys::order_line(1, 2, 3, 2));
        assert_ne!(keys::order_line(1, 2, 3, 1), keys::order(1, 2, 3));
        assert_ne!(keys::customer(1, 2, 3), keys::customer(1, 3, 3));
    }

    #[test]
    fn order_and_orderline_share_order_bits() {
        // order_line(o, line) must sort within order o's range.
        let ol = keys::order_line(1, 2, 100, 5);
        assert_eq!(ol >> 8 << 8, keys::order(1, 2, 100));
    }

    #[test]
    fn placement_maps_warehouses_round_robin() {
        let p = TpccPlacement::new(4);
        assert_eq!(
            p.partition_of(RecordId::new(tables::WAREHOUSE, keys::warehouse(1))),
            PartitionId(0)
        );
        assert_eq!(
            p.partition_of(RecordId::new(tables::DISTRICT, keys::district(4, 3))),
            PartitionId(3)
        );
        assert_eq!(
            p.partition_of(RecordId::new(tables::STOCK, keys::stock(5, 9))),
            PartitionId(0)
        );
    }

    #[test]
    fn schema_has_all_tables() {
        let s = tpcc_schema();
        assert_eq!(s.len(), 8);
        assert_eq!(s.by_name("district").col("d_next_o_id"), 4);
        assert_eq!(s.by_name("warehouse").col("w_ytd"), 2);
    }
}
