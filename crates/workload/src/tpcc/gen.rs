//! TPC-C data generation (scaled).

use super::schema::{keys, tables};
use chiller_common::ids::RecordId;
use chiller_common::rng::{derive_seed, seeded};
use chiller_common::value::{Row, Value};
use rand::Rng;

/// Scaled TPC-C sizing knobs.
#[derive(Debug, Clone)]
pub struct TpccConfig {
    pub warehouses: u64,
    /// Customers per district (spec: 3000).
    pub customers_per_district: u64,
    /// Items (and stock rows) per warehouse (spec: 100k shared items).
    pub items: u64,
    /// Preloaded orders per district; the first half are delivered, the
    /// second half sit in NEW_ORDER awaiting Delivery (spec: 3000/2100).
    pub preloaded_orders: u64,
    /// Order lines for every preloaded order (>= 5 so StockLevel can probe
    /// a fixed number of lines).
    pub preloaded_lines: u64,
    pub seed: u64,
}

impl Default for TpccConfig {
    fn default() -> Self {
        TpccConfig {
            warehouses: 4,
            customers_per_district: 120,
            items: 1_000,
            preloaded_orders: 40,
            preloaded_lines: 5,
            seed: 0x79CC,
        }
    }
}

impl TpccConfig {
    pub fn with_warehouses(warehouses: u64) -> Self {
        TpccConfig {
            warehouses,
            ..Default::default()
        }
    }

    /// First order id NewOrder will create (`d_next_o_id` initial value).
    pub fn first_new_order(&self) -> u64 {
        self.preloaded_orders + 1
    }

    /// Initial `d_last_delivered` (half the preloaded orders delivered).
    pub fn last_delivered(&self) -> u64 {
        self.preloaded_orders / 2
    }

    /// Unit price of an item (deterministic in the item id; stands in for
    /// the read-only ITEM table, see module docs).
    pub fn item_price(&self, i_id: u64) -> f64 {
        1.0 + (i_id % 100) as f64 * 0.5
    }
}

/// Generate all initial records. Order is deterministic.
pub fn load_tpcc(cfg: &TpccConfig) -> Vec<(RecordId, Row)> {
    let mut rng = seeded(derive_seed(cfg.seed, 0x10AD));
    let mut out: Vec<(RecordId, Row)> = Vec::new();
    for w in 1..=cfg.warehouses {
        out.push((
            RecordId::new(tables::WAREHOUSE, keys::warehouse(w)),
            vec![
                Value::from(w),
                Value::F64(rng.gen_range(0.0..0.2)), // w_tax
                Value::F64(300_000.0),               // w_ytd
            ],
        ));
        for d in 1..=10u64 {
            out.push((
                RecordId::new(tables::DISTRICT, keys::district(w, d)),
                vec![
                    Value::from(w),
                    Value::from(d),
                    Value::F64(rng.gen_range(0.0..0.2)), // d_tax
                    Value::F64(30_000.0),                // d_ytd
                    Value::from(cfg.first_new_order()),  // d_next_o_id
                    Value::from(cfg.last_delivered()),   // d_last_delivered
                ],
            ));
            for c in 1..=cfg.customers_per_district {
                out.push((
                    RecordId::new(tables::CUSTOMER, keys::customer(w, d, c)),
                    vec![
                        Value::from(w),
                        Value::from(d),
                        Value::from(c),
                        Value::F64(-10.0), // c_balance
                        Value::F64(10.0),  // c_ytd_payment
                        Value::from(1u64), // c_payment_cnt
                        Value::from(0u64), // c_delivery_cnt
                    ],
                ));
            }
            for o in 1..=cfg.preloaded_orders {
                let c = rng.gen_range(1..=cfg.customers_per_district);
                let mut total = 0.0;
                for line in 1..=cfg.preloaded_lines {
                    let i = rng.gen_range(1..=cfg.items);
                    let qty = rng.gen_range(1..=10) as f64;
                    let amount = qty * cfg.item_price(i);
                    total += amount;
                    out.push((
                        RecordId::new(tables::ORDER_LINE, keys::order_line(w, d, o, line)),
                        vec![
                            Value::from(i),
                            Value::from(w), // supply warehouse (home for preload)
                            Value::F64(qty),
                            Value::F64(amount),
                        ],
                    ));
                }
                let delivered = o <= cfg.last_delivered();
                out.push((
                    RecordId::new(tables::ORDER, keys::order(w, d, o)),
                    vec![
                        Value::from(o),
                        Value::from(c),
                        Value::from(if delivered { 5u64 } else { 0 }), // o_carrier_id
                        Value::from(cfg.preloaded_lines),
                        Value::F64(total),
                    ],
                ));
                if !delivered {
                    out.push((
                        RecordId::new(tables::NEW_ORDER, keys::new_order(w, d, o)),
                        vec![Value::from(o)],
                    ));
                }
            }
        }
        for i in 1..=cfg.items {
            out.push((
                RecordId::new(tables::STOCK, keys::stock(w, i)),
                vec![
                    Value::from(i),
                    Value::I64(rng.gen_range(50..=100)), // s_quantity
                    Value::F64(0.0),                     // s_ytd
                    Value::from(0u64),                   // s_order_cnt
                    Value::from(0u64),                   // s_remote_cnt
                ],
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn cfg() -> TpccConfig {
        TpccConfig {
            warehouses: 2,
            customers_per_district: 10,
            items: 50,
            preloaded_orders: 8,
            preloaded_lines: 5,
            seed: 1,
        }
    }

    #[test]
    fn cardinalities_match_config() {
        let c = cfg();
        let records = load_tpcc(&c);
        let count = |t| records.iter().filter(|(r, _)| r.table == t).count() as u64;
        assert_eq!(count(tables::WAREHOUSE), 2);
        assert_eq!(count(tables::DISTRICT), 20);
        assert_eq!(count(tables::CUSTOMER), 2 * 10 * 10);
        assert_eq!(count(tables::STOCK), 2 * 50);
        assert_eq!(count(tables::ORDER), 2 * 10 * 8);
        assert_eq!(count(tables::ORDER_LINE), 2 * 10 * 8 * 5);
        // Half the preloaded orders are undelivered.
        assert_eq!(count(tables::NEW_ORDER), 2 * 10 * 4);
    }

    #[test]
    fn keys_are_unique() {
        let records = load_tpcc(&cfg());
        let mut seen = HashSet::new();
        for (rid, _) in &records {
            assert!(seen.insert(*rid), "duplicate key {rid}");
        }
    }

    #[test]
    fn district_counters_initialized() {
        let c = cfg();
        let records = load_tpcc(&c);
        let d = records
            .iter()
            .find(|(r, _)| *r == RecordId::new(tables::DISTRICT, keys::district(1, 1)))
            .unwrap();
        assert_eq!(d.1[4].as_i64() as u64, c.first_new_order());
        assert_eq!(d.1[5].as_i64() as u64, c.last_delivered());
    }

    #[test]
    fn order_total_matches_lines() {
        let c = cfg();
        let records = load_tpcc(&c);
        let order_key = keys::order(1, 1, 1);
        let total = records
            .iter()
            .find(|(r, _)| r.table == tables::ORDER && r.key == order_key)
            .unwrap()
            .1[4]
            .as_f64();
        let line_sum: f64 = (1..=c.preloaded_lines)
            .map(|l| {
                records
                    .iter()
                    .find(|(r, _)| {
                        r.table == tables::ORDER_LINE && r.key == keys::order_line(1, 1, 1, l)
                    })
                    .unwrap()
                    .1[3]
                    .as_f64()
            })
            .sum();
        assert!((total - line_sum).abs() < 1e-9);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = load_tpcc(&cfg());
        let b = load_tpcc(&cfg());
        assert_eq!(a.len(), b.len());
        for ((ra, rowa), (rb, rowb)) in a.iter().zip(&b) {
            assert_eq!(ra, rb);
            assert_eq!(rowa, rowb);
        }
    }
}
