//! Full TPC-C for the simulated cluster (paper §7.3–7.4).
//!
//! ## Faithfulness and documented simplifications
//!
//! * All five transaction types run at the standard mix (NewOrder 45%,
//!   Payment 43%, OrderStatus 4%, Delivery 4%, StockLevel 4%), with the
//!   standard remote probabilities (10% remote NewOrder items, 15% remote
//!   Payment customers) as sweep knobs.
//! * Partitioned **by warehouse**, one warehouse per engine, exactly like
//!   the paper's §7.3 setup.
//! * Contention points preserved: every NewOrder increments one of the 10
//!   district rows; every Payment updates the warehouse row; StockLevel
//!   reads the district row with a shared lock.
//! * The ITEM table is read-only in TPC-C; like most distributed TPC-C
//!   implementations the price/name lookup is resolved at input-generation
//!   time (equivalent to full replication of ITEM). This removes no
//!   contention — ITEM is never written.
//! * Delivery processes one district per invocation (the spec queues the
//!   10-district sweep asynchronously); the order row carries its total so
//!   the customer credit needs no order-line scan.
//! * OrderStatus reads a preloaded order by id (the spec's
//!   latest-order-of-customer secondary index is out of scope); StockLevel
//!   examines the most recent order's lines and their stock rows.
//! * Cardinalities are scaled (customers/district, items/warehouse,
//!   preloaded orders/district are configurable) so simulations fit in
//!   memory; contention behaviour is governed by the district/warehouse
//!   rows, which are kept 1:1 with the spec.

pub mod gen;
pub mod invariants;
pub mod procs;
pub mod schema;
pub mod source;

pub use gen::{load_tpcc, TpccConfig};
pub use invariants::assert_tpcc_invariants;
pub use procs::{register_procs, TpccProcs};
pub use schema::{keys, tables, tpcc_schema, TpccPlacement};
pub use source::{
    build_tpcc_cluster, build_tpcc_cluster_full, build_tpcc_cluster_on, build_tpcc_cluster_traced,
    TpccMix, TpccSource,
};

use chiller_common::ids::RecordId;

/// The hot set the paper identifies for TPC-C: the warehouse row and the
/// 10 district rows of every warehouse (§7.3.2: NewOrder's district
/// increment and Payment's warehouse update).
pub fn hot_records(cfg: &TpccConfig) -> Vec<RecordId> {
    let mut hot = Vec::new();
    for w in 1..=cfg.warehouses {
        hot.push(RecordId::new(tables::WAREHOUSE, keys::warehouse(w)));
        for d in 1..=10 {
            hot.push(RecordId::new(tables::DISTRICT, keys::district(w, d)));
        }
    }
    hot
}
