//! TPC-C input generation (the closed-loop client of each engine) and a
//! one-call cluster builder.

use super::gen::{load_tpcc, TpccConfig};
use super::procs::{register_procs, TpccProcs, MAX_LINES, MIN_LINES, STOCK_LEVEL_LINES};
use super::schema::{keys, tpcc_schema, TpccPlacement};
use chiller::prelude::*;
use chiller_common::rng::NuRand;
use rand::rngs::StdRng;
use rand::Rng;
use std::sync::Arc;

/// Transaction mix percentages (must sum to 100). Defaults follow the
/// standard full mix the paper's §7.3 uses.
#[derive(Debug, Clone, Copy)]
pub struct TpccMix {
    pub new_order: u32,
    pub payment: u32,
    pub order_status: u32,
    pub delivery: u32,
    pub stock_level: u32,
    /// Probability a NewOrder has at least one remote item (default 10%).
    pub remote_item_prob: f64,
    /// Probability a Payment pays a remote customer (default 15%).
    pub remote_customer_prob: f64,
    /// Probability of the spec's simulated NewOrder user rollback (1%).
    pub rollback_prob: f64,
}

impl Default for TpccMix {
    fn default() -> Self {
        TpccMix {
            new_order: 45,
            payment: 43,
            order_status: 4,
            delivery: 4,
            stock_level: 4,
            remote_item_prob: 0.10,
            remote_customer_prob: 0.15,
            rollback_prob: 0.01,
        }
    }
}

impl TpccMix {
    /// The §7.4 mix: NewOrder and Payment only, 50/50, with a sweepable
    /// distributed-transaction probability applied to both.
    pub fn payment_neworder(distributed_prob: f64) -> Self {
        TpccMix {
            new_order: 50,
            payment: 50,
            order_status: 0,
            delivery: 0,
            stock_level: 0,
            remote_item_prob: distributed_prob,
            remote_customer_prob: distributed_prob,
            rollback_prob: 0.01,
        }
    }

    fn total(&self) -> u32 {
        self.new_order + self.payment + self.order_status + self.delivery + self.stock_level
    }
}

/// Per-engine input source: generates transactions homed at this engine's
/// warehouse.
pub struct TpccSource {
    cfg: TpccConfig,
    procs: TpccProcs,
    mix: TpccMix,
    home_w: u64,
    history_seq: u64,
    nurand_c: NuRand,
    nurand_i: NuRand,
}

impl TpccSource {
    pub fn new(cfg: TpccConfig, procs: TpccProcs, mix: TpccMix, home_w: u64) -> Self {
        assert_eq!(mix.total(), 100, "mix must sum to 100");
        assert!(home_w >= 1 && home_w <= cfg.warehouses);
        let nurand_c = NuRand::new(1023, 1, cfg.customers_per_district, 259);
        let nurand_i = NuRand::new(8191, 1, cfg.items, 7911);
        TpccSource {
            cfg,
            procs,
            mix,
            home_w,
            history_seq: 0,
            nurand_c,
            nurand_i,
        }
    }

    /// Start the HISTORY-row key sequence at `first`. Payment mints fresh
    /// HISTORY keys from this counter, so a restarted durable incarnation
    /// must not begin at 0 again — salt with the recovery epoch
    /// (`chiller::cluster::wal_epoch(dir) << 32`) to keep every
    /// incarnation's keys disjoint.
    pub fn with_first_history_seq(mut self, first: u64) -> Self {
        assert!(
            first < (1 << 40),
            "history seq must fit the key's 40-bit sequence field"
        );
        self.history_seq = first;
        self
    }

    fn other_warehouse(&self, rng: &mut StdRng) -> u64 {
        if self.cfg.warehouses == 1 {
            return self.home_w;
        }
        let mut w = rng.gen_range(1..=self.cfg.warehouses - 1);
        if w >= self.home_w {
            w += 1;
        }
        w
    }

    fn new_order(&mut self, rng: &mut StdRng) -> TxnInput {
        let w = self.home_w;
        let d = rng.gen_range(1..=10u64);
        let c = self.nurand_c.sample(rng);
        let lines = rng.gen_range(MIN_LINES..=MAX_LINES);
        let rollback = rng.gen_bool(self.mix.rollback_prob);
        let mut params = vec![
            Value::from(keys::warehouse(w)),
            Value::from(keys::district(w, d)),
            Value::from(keys::customer(w, d, c)),
            Value::from(u64::from(rollback)),
        ];
        // "At least one remote item" with the configured probability.
        let remote_line = if rng.gen_bool(self.mix.remote_item_prob) {
            Some(rng.gen_range(0..lines))
        } else {
            None
        };
        let mut picked: Vec<u64> = Vec::with_capacity(lines);
        for l in 0..lines {
            // Spec: order lines reference distinct items.
            let i = loop {
                let i = self.nurand_i.sample(rng);
                if !picked.contains(&i) {
                    break i;
                }
            };
            picked.push(i);
            let supply_w = if remote_line == Some(l) {
                self.other_warehouse(rng)
            } else {
                w
            };
            params.push(Value::from(keys::stock(supply_w, i)));
            params.push(Value::from(rng.gen_range(1..=10u64))); // qty
            params.push(Value::F64(self.cfg.item_price(i)));
        }
        TxnInput {
            proc: self.procs.new_order_with(lines),
            params,
        }
    }

    fn payment(&mut self, rng: &mut StdRng) -> TxnInput {
        let w = self.home_w;
        let d = rng.gen_range(1..=10u64);
        let (c_w, c_d) = if rng.gen_bool(self.mix.remote_customer_prob) {
            (self.other_warehouse(rng), rng.gen_range(1..=10u64))
        } else {
            (w, d)
        };
        let c = self.nurand_c.sample(rng);
        self.history_seq += 1;
        TxnInput {
            proc: self.procs.payment,
            params: vec![
                Value::from(keys::warehouse(w)),
                Value::from(keys::district(w, d)),
                Value::from(keys::customer(c_w, c_d, c)),
                Value::F64(rng.gen_range(1.0..5_000.0)),
                Value::from(keys::history(w, d, self.history_seq)),
            ],
        }
    }

    fn order_status(&mut self, rng: &mut StdRng) -> TxnInput {
        let w = self.home_w;
        let d = rng.gen_range(1..=10u64);
        let c = self.nurand_c.sample(rng);
        let o = rng.gen_range(1..=self.cfg.preloaded_orders);
        let mut params = vec![
            Value::from(keys::customer(w, d, c)),
            Value::from(keys::order(w, d, o)),
        ];
        for l in 1..=STOCK_LEVEL_LINES as u64 {
            params.push(Value::from(keys::order_line(w, d, o, l)));
        }
        TxnInput {
            proc: self.procs.order_status,
            params,
        }
    }

    fn delivery(&mut self, rng: &mut StdRng) -> TxnInput {
        let w = self.home_w;
        let d = rng.gen_range(1..=10u64);
        TxnInput {
            proc: self.procs.delivery,
            params: vec![
                Value::from(keys::district(w, d)),
                Value::from(rng.gen_range(1..=10u64)), // carrier
            ],
        }
    }

    fn stock_level(&mut self, rng: &mut StdRng) -> TxnInput {
        let w = self.home_w;
        let d = rng.gen_range(1..=10u64);
        TxnInput {
            proc: self.procs.stock_level,
            params: vec![
                Value::from(keys::district(w, d)),
                Value::from(rng.gen_range(10..=20u64)), // threshold
            ],
        }
    }
}

impl InputSource for TpccSource {
    fn next_input(&mut self, rng: &mut StdRng, _now: SimTime) -> TxnInput {
        let roll = rng.gen_range(0..100u32);
        let m = self.mix;
        if roll < m.new_order {
            self.new_order(rng)
        } else if roll < m.new_order + m.payment {
            self.payment(rng)
        } else if roll < m.new_order + m.payment + m.order_status {
            self.order_status(rng)
        } else if roll < m.new_order + m.payment + m.order_status + m.delivery {
            self.delivery(rng)
        } else {
            self.stock_level(rng)
        }
    }
}

/// Build a TPC-C cluster: one warehouse per node (the paper's §7.3
/// deployment), warehouse placement, hot district/warehouse rows for
/// Chiller's lookup table. Runs on the deterministic simulator; see
/// [`build_tpcc_cluster_on`] for an explicit backend.
pub fn build_tpcc_cluster(
    cfg: &TpccConfig,
    mix: TpccMix,
    protocol: Protocol,
    sim: SimConfig,
) -> Cluster {
    build_tpcc_cluster_on(cfg, mix, protocol, sim, Backend::Simulated)
}

/// Build a TPC-C cluster on an explicit execution backend — identical
/// schema, placement, procedures and sources either way, so the
/// simulated Figure 9 and its threaded wall-clock companion are directly
/// comparable. On [`Backend::Threaded`] each warehouse's engine (and its
/// input source) runs on its own OS thread.
pub fn build_tpcc_cluster_on(
    cfg: &TpccConfig,
    mix: TpccMix,
    protocol: Protocol,
    sim: SimConfig,
    backend: Backend,
) -> Cluster {
    build_tpcc_cluster_traced(cfg, mix, protocol, sim, backend, None)
}

/// [`build_tpcc_cluster_on`] with an explicit lifecycle-trace mode
/// (`None` defers to the `CHILLER_TRACE` environment knob) — the door
/// the TPC-C trace smoke drives all three backends through.
pub fn build_tpcc_cluster_traced(
    cfg: &TpccConfig,
    mix: TpccMix,
    protocol: Protocol,
    sim: SimConfig,
    backend: Backend,
    trace: Option<TraceMode>,
) -> Cluster {
    build_tpcc_cluster_full(cfg, mix, protocol, sim, backend, trace, None, None)
}

/// The fully-parameterized TPC-C cluster door: explicit trace mode,
/// serializability-check mode, and durable directory (`None` defers each
/// to its environment knob). The crash-recovery suite drives every
/// backend through this — once to kill, once to recover against the same
/// directory.
#[allow(clippy::too_many_arguments)]
pub fn build_tpcc_cluster_full(
    cfg: &TpccConfig,
    mix: TpccMix,
    protocol: Protocol,
    sim: SimConfig,
    backend: Backend,
    trace: Option<TraceMode>,
    check: Option<CheckMode>,
    durable: Option<&std::path::Path>,
) -> Cluster {
    assert_eq!(
        cfg.warehouses as usize as u64, cfg.warehouses,
        "warehouse count fits usize"
    );
    let nodes = cfg.warehouses as usize;
    let mut builder = ClusterBuilder::new(tpcc_schema(), nodes);
    let procs = register_procs(|p| builder.register_proc(p));
    builder
        .protocol(protocol)
        .config(sim)
        .runtime(backend)
        .placement(Arc::new(TpccPlacement::new(nodes as u32)))
        .hot_records(super::hot_records(cfg))
        .load(load_tpcc(cfg));
    if let Some(mode) = trace {
        builder.trace(mode);
    }
    if let Some(mode) = check {
        builder.check(mode);
    }
    if let Some(dir) = durable {
        builder.durable(dir);
    }
    let cfg = cfg.clone();
    // Sources are constructed after the builder's recovery pass has bumped
    // the epoch file, so a post-crash incarnation salts its HISTORY key
    // sequence and never collides with rows a dead incarnation inserted.
    let wal_dir = durable.map(std::path::Path::to_path_buf).or_else(|| {
        std::env::var("CHILLER_WAL")
            .ok()
            .map(std::path::PathBuf::from)
    });
    builder.source_per_node(move |node| {
        let epoch = wal_dir.as_deref().map_or(0, chiller::cluster::wal_epoch);
        Box::new(
            TpccSource::new(cfg.clone(), procs.clone(), mix, node.0 as u64 + 1)
                .with_first_history_seq(epoch << 32),
        )
    });
    builder.build().expect("valid TPC-C cluster")
}

#[cfg(test)]
mod tests {
    use super::*;
    use chiller_common::rng::seeded;

    fn source() -> TpccSource {
        let cfg = TpccConfig::with_warehouses(4);
        let procs = register_procs({
            let mut n = 0;
            move |_| {
                n += 1;
                n - 1
            }
        });
        TpccSource::new(cfg, procs, TpccMix::default(), 2)
    }

    #[test]
    fn mix_fractions_approximate_spec() {
        let mut src = source();
        let mut rng = seeded(3);
        let mut counts = [0usize; 5];
        let n = 20_000;
        for _ in 0..n {
            let input = src.next_input(&mut rng, SimTime::ZERO);
            // Classify by param shape.
            let idx = if input.proc < MAX_LINES - MIN_LINES + 1 {
                0
            } else {
                input.proc - (MAX_LINES - MIN_LINES)
            };
            counts[idx.min(4)] += 1;
        }
        let frac = |i: usize| counts[i] as f64 / n as f64;
        assert!((frac(0) - 0.45).abs() < 0.02, "NewOrder {}", frac(0));
        assert!((frac(1) - 0.43).abs() < 0.02, "Payment {}", frac(1));
    }

    #[test]
    fn new_order_remote_prob_respected() {
        let mut src = source();
        let mut rng = seeded(9);
        let mut remote = 0;
        let mut total = 0;
        for _ in 0..50_000 {
            let input = src.next_input(&mut rng, SimTime::ZERO);
            if input.proc > MAX_LINES - MIN_LINES {
                continue; // not NewOrder
            }
            total += 1;
            let lines = (input.params.len() - 4) / 3;
            let any_remote = (0..lines)
                .any(|l| keys::warehouse_of(input.params[4 + 3 * l].as_i64() as u64) != 2);
            if any_remote {
                remote += 1;
            }
        }
        let frac = remote as f64 / total as f64;
        assert!((frac - 0.10).abs() < 0.015, "remote NewOrder frac {frac}");
    }

    #[test]
    fn payment_remote_customer_prob_respected() {
        let mut src = source();
        let mut rng = seeded(11);
        let mut remote = 0;
        let mut total = 0;
        for _ in 0..50_000 {
            let input = src.next_input(&mut rng, SimTime::ZERO);
            if input.proc != src.procs.payment {
                continue;
            }
            total += 1;
            if keys::warehouse_of(input.params[2].as_i64() as u64) != 2 {
                remote += 1;
            }
        }
        let frac = remote as f64 / total as f64;
        assert!((frac - 0.15).abs() < 0.02, "remote Payment frac {frac}");
    }

    #[test]
    fn history_keys_are_unique() {
        let mut src = source();
        let mut rng = seeded(13);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..10_000 {
            let input = src.next_input(&mut rng, SimTime::ZERO);
            if input.proc == src.procs.payment {
                assert!(seen.insert(input.params[4].as_i64()));
            }
        }
    }

    #[test]
    fn params_stay_in_home_warehouse_for_district_keys() {
        let mut src = source();
        let mut rng = seeded(17);
        for _ in 0..5_000 {
            let input = src.next_input(&mut rng, SimTime::ZERO);
            // Every district-scoped key param must be home (warehouse 2),
            // except customer (payment) and stock (new order) keys.
            if input.proc == src.procs.delivery || input.proc == src.procs.stock_level {
                assert_eq!(keys::warehouse_of(input.params[0].as_i64() as u64), 2);
            }
        }
    }
}
