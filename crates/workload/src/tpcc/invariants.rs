//! Post-quiescence serializability invariants for TPC-C clusters.
//!
//! Black-box checks in the spirit of Huang et al.'s snapshot-isolation
//! checking: instead of validating a history, they validate conservation
//! laws the workload's stored procedures maintain under any serializable
//! interleaving — a lost update, double-applied write, phantom order id
//! or leaked lock anywhere in the protocol/runtime stack breaks one of
//! them. Shared by the simulator parity suites and the threaded TPC-C
//! bench (`fig9_tpcc_threaded`), where a passing drain is the stress
//! certificate for the run that produced the numbers.

use super::gen::TpccConfig;
use super::procs::{C_YTD_PAYMENT, D_LAST_DELIVERED, D_NEXT_O_ID, D_YTD, W_YTD};
use super::schema::tables;
use chiller::prelude::*;

/// Sum a column of a table across every primary partition.
fn sum_f64(cluster: &Cluster, table: TableId, col: usize) -> f64 {
    cluster
        .engines()
        .iter()
        .flat_map(|e| e.store().table(table).iter())
        .map(|(_, row)| row[col].as_f64())
        .sum()
}

fn count_rows(cluster: &Cluster, table: TableId) -> u64 {
    cluster
        .engines()
        .iter()
        .map(|e| e.store().table(table).num_records() as u64)
        .sum()
}

/// Assert the TPC-C serializability contract on a quiesced cluster.
///
/// * **Money conservation** — every committed Payment adds the same
///   amount to one warehouse's `w_ytd`, its district's `d_ytd`, and the
///   customer's `c_ytd_payment`, so the three ledgers' deltas from the
///   initial load must agree exactly.
/// * **Order-id integrity** — each committed NewOrder consumes one
///   `d_next_o_id` and inserts exactly one ORDER row under it, so total
///   ORDER rows must equal the summed district counters; a lost counter
///   update or double-applied insert breaks the equality.
/// * **Delivery pipeline** — NEW_ORDER rows are created by NewOrder and
///   consumed by Delivery, so their count must equal the summed
///   undelivered window `d_next_o_id - 1 - d_last_delivered`.
/// * **Runtime hygiene** — no leaked locks, no zombie transactions, zero
///   replica divergence.
///
/// Panics with `label` in the message on any violation. The cluster must
/// already be quiesced (see `Cluster::quiesce`).
pub fn assert_tpcc_invariants(cluster: &Cluster, cfg: &TpccConfig, label: &str) {
    let w = cfg.warehouses as f64;
    let customers = (cfg.warehouses * 10 * cfg.customers_per_district) as f64;

    // Ledger deltas from the loaded state (see gen.rs for the initials).
    let w_delta = sum_f64(cluster, tables::WAREHOUSE, W_YTD) - w * 300_000.0;
    let d_delta = sum_f64(cluster, tables::DISTRICT, D_YTD) - w * 10.0 * 30_000.0;
    let c_delta = sum_f64(cluster, tables::CUSTOMER, C_YTD_PAYMENT) - customers * 10.0;
    assert!(
        (w_delta - d_delta).abs() < 1.0 && (w_delta - c_delta).abs() < 1.0,
        "{label}: payment ledgers diverged — warehouse +{w_delta:.2}, \
         district +{d_delta:.2}, customer +{c_delta:.2}"
    );
    assert!(
        w_delta >= 0.0,
        "{label}: warehouse YTD shrank ({w_delta:.2})"
    );

    // District counters vs materialized orders.
    let districts: Vec<(i64, i64)> = cluster
        .engines()
        .iter()
        .flat_map(|e| e.store().table(tables::DISTRICT).iter())
        .map(|(_, row)| (row[D_NEXT_O_ID].as_i64(), row[D_LAST_DELIVERED].as_i64()))
        .collect();
    assert_eq!(
        districts.len() as u64,
        cfg.warehouses * 10,
        "{label}: district rows lost"
    );
    let orders_by_counter: i64 = districts.iter().map(|(next, _)| next - 1).sum();
    let undelivered_by_counter: i64 = districts
        .iter()
        .map(|(next, last)| {
            assert!(
                last < next,
                "{label}: d_last_delivered {last} passed d_next_o_id {next}"
            );
            next - 1 - last
        })
        .sum();
    assert_eq!(
        count_rows(cluster, tables::ORDER) as i64,
        orders_by_counter,
        "{label}: ORDER rows disagree with district o_id counters \
         (lost counter update or double-applied insert)"
    );
    assert_eq!(
        count_rows(cluster, tables::NEW_ORDER) as i64,
        undelivered_by_counter,
        "{label}: NEW_ORDER rows disagree with the undelivered window"
    );

    // Runtime hygiene: nothing held, nothing half-done, replicas agree.
    for engine in cluster.engines() {
        assert!(
            engine.store().all_locks_free(),
            "{label}: leaked locks on node {}",
            engine.store().partition
        );
        assert_eq!(engine.open_txns(), 0, "{label}: zombie transactions");
    }
    assert_eq!(
        cluster.replica_divergence(),
        0,
        "{label}: replicas diverged"
    );
}
