//! The five TPC-C stored procedures as dependency-analyzed operation DAGs.
//!
//! Parameter layouts are produced by [`super::source::TpccSource`]; keys
//! arrive pre-packed (see [`super::schema::keys`]).
//!
//! Under Chiller's run-time decision (with the warehouse row and district
//! rows marked hot):
//! * **NewOrder** — the district increment plus the order / new-order /
//!   order-line inserts (whose keys derive from `d_next_o_id`) form the
//!   inner region on the home partition; stock updates (possibly remote)
//!   and the customer read stay outer. This is precisely the paper's §7.3
//!   description of serializing the district contention point.
//! * **Payment** — the warehouse and district updates (and the history
//!   insert) go inner; the (15% remote) customer update stays outer.
//! * **StockLevel** — the district read cannot move inner because the stock
//!   rows it transitively keys (via the previous order's lines) may live on
//!   other partitions (§3.3's legality rule), so it runs as a normal
//!   transaction and keeps conflicting with NewOrder — matching Figure 9c.

use super::schema::tables;
use chiller_common::ids::OpId;
use chiller_common::value::Value;
use chiller_sproc::{Procedure, ProcedureBuilder};

// Column indices (shared with the invariant checks in `invariants.rs`).
pub(crate) const W_YTD: usize = 2;
pub(crate) const D_YTD: usize = 3;
pub(crate) const D_NEXT_O_ID: usize = 4;
pub(crate) const D_LAST_DELIVERED: usize = 5;
const C_BALANCE: usize = 3;
pub(crate) const C_YTD_PAYMENT: usize = 4;
const C_PAYMENT_CNT: usize = 5;
const C_DELIVERY_CNT: usize = 6;
const O_C_ID: usize = 1;
const O_CARRIER: usize = 2;
const O_TOTAL: usize = 4;
const S_QUANTITY: usize = 1;
const S_YTD: usize = 2;
const S_ORDER_CNT: usize = 3;
const S_REMOTE_CNT: usize = 4;
const OL_I_ID: usize = 0;
const OL_SUPPLY_W: usize = 1;

const W_SHIFT: u32 = 48;
/// Mask keeping the (w, d) prefix of a district-scoped key.
const WD_MASK: u64 = !((1u64 << 40) - 1);

/// Registered procedure ids for the mix.
#[derive(Debug, Clone)]
pub struct TpccProcs {
    /// NewOrder variants indexed by `ol_cnt - MIN_LINES`.
    pub new_order: Vec<usize>,
    pub payment: usize,
    pub order_status: usize,
    pub delivery: usize,
    pub stock_level: usize,
}

pub const MIN_LINES: usize = 5;
pub const MAX_LINES: usize = 15;
/// Order lines StockLevel examines from the previous order.
pub const STOCK_LEVEL_LINES: usize = 5;

/// Build and register all procedures through `register` (typically
/// `ClusterBuilder::register_proc`).
pub fn register_procs(mut register: impl FnMut(Procedure) -> usize) -> TpccProcs {
    let new_order = (MIN_LINES..=MAX_LINES)
        .map(|lines| register(new_order_proc(lines)))
        .collect();
    TpccProcs {
        new_order,
        payment: register(payment_proc()),
        order_status: register(order_status_proc()),
        delivery: register(delivery_proc()),
        stock_level: register(stock_level_proc()),
    }
}

impl TpccProcs {
    /// Procedure id for a NewOrder with `lines` order lines.
    pub fn new_order_with(&self, lines: usize) -> usize {
        assert!((MIN_LINES..=MAX_LINES).contains(&lines));
        self.new_order[lines - MIN_LINES]
    }
}

/// NewOrder params: `[0]` w key, `[1]` district key, `[2]` customer key,
/// `[3]` rollback flag, then per line `l`: `[4+3l]` stock key, `[5+3l]`
/// qty (i64), `[6+3l]` price (f64).
///
/// Ops: 0 = warehouse read, 1 = district update (o_id counter),
/// 2 = customer read, 3..3+L = stock updates, then order insert, new-order
/// insert, and L order-line inserts.
pub fn new_order_proc(lines: usize) -> Procedure {
    let district_op = OpId(1);
    let mut b = ProcedureBuilder::new("NewOrder")
        .read(tables::WAREHOUSE, 0, "read warehouse")
        .update(tables::DISTRICT, 1, "bump d_next_o_id", |row, _| {
            let mut r = row.clone();
            r[D_NEXT_O_ID] = Value::I64(r[D_NEXT_O_ID].as_i64() + 1);
            r
        })
        .read(tables::CUSTOMER, 2, "read customer");
    for l in 0..lines {
        let key_param = 4 + 3 * l;
        let qty_param = key_param + 1;
        b = b.update(tables::STOCK, key_param, "update stock", move |row, st| {
            let qty = st.param_i64(qty_param);
            let home_w = st.param_u64(0) >> W_SHIFT;
            let supply_w = st.param_u64(key_param) >> W_SHIFT;
            let mut r = row.clone();
            let mut s_qty = r[S_QUANTITY].as_i64() - qty;
            if s_qty < 10 {
                s_qty += 91;
            }
            r[S_QUANTITY] = Value::I64(s_qty);
            r[S_YTD] = Value::F64(r[S_YTD].as_f64() + qty as f64);
            r[S_ORDER_CNT] = Value::I64(r[S_ORDER_CNT].as_i64() + 1);
            if supply_w != home_w {
                r[S_REMOTE_CNT] = Value::I64(r[S_REMOTE_CNT].as_i64() + 1);
            }
            r
        });
    }
    // o_id = the pre-increment district counter.
    let o_of = move |st: &chiller_sproc::ExecState| {
        st.output_req(district_op)[D_NEXT_O_ID].as_i64() as u64 - 1
    };
    let order_total = move |st: &chiller_sproc::ExecState| {
        (0..lines)
            .map(|l| st.param_i64(5 + 3 * l) as f64 * st.param_f64(6 + 3 * l))
            .sum::<f64>()
    };
    b = b
        .insert_with_key_from(
            tables::ORDER,
            &[district_op],
            "insert order",
            move |st| (st.param_u64(1) & WD_MASK) | (o_of(st) << 8),
            move |st| {
                vec![
                    Value::from(o_of(st)),
                    Value::from(st.param_u64(2) >> 16 & 0xFF_FFFF), // c_id
                    Value::from(0u64),                              // carrier
                    Value::from(lines as u64),
                    Value::F64(order_total(st)),
                ]
            },
        )
        .hint(|st| st.param_u64(1))
        .insert_with_key_from(
            tables::NEW_ORDER,
            &[district_op],
            "insert new_order",
            move |st| (st.param_u64(1) & WD_MASK) | (o_of(st) << 8),
            move |st| vec![Value::from(o_of(st))],
        )
        .hint(|st| st.param_u64(1));
    for l in 0..lines {
        let key_param = 4 + 3 * l;
        b = b
            .insert_with_key_from(
                tables::ORDER_LINE,
                &[district_op],
                "insert order_line",
                move |st| (st.param_u64(1) & WD_MASK) | (o_of(st) << 8) | (l as u64 + 1),
                move |st| {
                    let stock_key = st.param_u64(key_param);
                    let qty = st.param_i64(key_param + 1);
                    let price = st.param_f64(key_param + 2);
                    vec![
                        Value::from(stock_key & 0xFFFF_FFFF), // i_id
                        Value::from(stock_key >> W_SHIFT),    // supply w
                        Value::F64(qty as f64),
                        Value::F64(qty as f64 * price),
                    ]
                },
            )
            .hint(|st| st.param_u64(1));
    }
    // The spec's 1% "unused item id" rollback: evaluated after the district
    // lock, so under Chiller the inner host folds it into its decision.
    b = b.guard(&[district_op], "rollback", |st| {
        if st.param_i64(3) != 0 {
            Err("simulated user rollback (invalid item)")
        } else {
            Ok(())
        }
    });
    b.build().expect("NewOrder procedure is well-formed")
}

/// Payment params: `[0]` w key, `[1]` district key, `[2]` customer key
/// (possibly remote warehouse), `[3]` amount, `[4]` history key.
pub fn payment_proc() -> Procedure {
    ProcedureBuilder::new("Payment")
        .update(tables::WAREHOUSE, 0, "w_ytd += amount", |row, st| {
            let mut r = row.clone();
            r[W_YTD] = Value::F64(r[W_YTD].as_f64() + st.param_f64(3));
            r
        })
        .update(tables::DISTRICT, 1, "d_ytd += amount", |row, st| {
            let mut r = row.clone();
            r[D_YTD] = Value::F64(r[D_YTD].as_f64() + st.param_f64(3));
            r
        })
        .update(tables::CUSTOMER, 2, "pay customer", |row, st| {
            let amount = st.param_f64(3);
            let mut r = row.clone();
            r[C_BALANCE] = Value::F64(r[C_BALANCE].as_f64() - amount);
            r[C_YTD_PAYMENT] = Value::F64(r[C_YTD_PAYMENT].as_f64() + amount);
            r[C_PAYMENT_CNT] = Value::I64(r[C_PAYMENT_CNT].as_i64() + 1);
            r
        })
        .insert(tables::HISTORY, 4, &[], "insert history", |st| {
            vec![Value::from(st.param_u64(2)), Value::F64(st.param_f64(3))]
        })
        .build()
        .expect("Payment procedure is well-formed")
}

/// OrderStatus params: `[0]` customer key, `[1]` order key (preloaded),
/// `[2..2+K]` order-line keys.
pub fn order_status_proc() -> Procedure {
    let mut b = ProcedureBuilder::new("OrderStatus")
        .read(tables::CUSTOMER, 0, "read customer")
        .read(tables::ORDER, 1, "read order");
    for l in 0..STOCK_LEVEL_LINES {
        b = b.read(tables::ORDER_LINE, 2 + l, "read order line");
    }
    b.build().expect("OrderStatus procedure is well-formed")
}

/// Delivery params: `[0]` district key, `[1]` carrier id.
///
/// Processes the next undelivered order of one district: bumps
/// `d_last_delivered`, stamps the order's carrier, removes the NEW_ORDER
/// row, credits the customer with the order total.
pub fn delivery_proc() -> Procedure {
    let district_op = OpId(0);
    let order_op = OpId(1);
    let o_of = move |st: &chiller_sproc::ExecState| {
        // Post-increment output: the order being delivered.
        st.output_req(district_op)[D_LAST_DELIVERED].as_i64() as u64
    };
    ProcedureBuilder::new("Delivery")
        .update(tables::DISTRICT, 0, "advance d_last_delivered", |row, _| {
            let mut r = row.clone();
            r[D_LAST_DELIVERED] = Value::I64(r[D_LAST_DELIVERED].as_i64() + 1);
            r
        })
        .update_with_key_from(
            tables::ORDER,
            &[district_op],
            "stamp carrier",
            move |st| (st.param_u64(0) & WD_MASK) | (o_of(st) << 8),
            |row, st| {
                let mut r = row.clone();
                r[O_CARRIER] = Value::I64(st.param_i64(1));
                r
            },
        )
        .hint(|st| st.param_u64(0))
        .op(
            tables::NEW_ORDER,
            chiller_sproc::KeyExpr::Computed {
                deps: vec![district_op],
                f: std::sync::Arc::new(move |st| (st.param_u64(0) & WD_MASK) | (o_of(st) << 8)),
            },
            chiller_sproc::OpKind::Delete,
            vec![],
            "consume new_order",
        )
        .hint(|st| st.param_u64(0))
        .update_with_key_from(
            tables::CUSTOMER,
            &[order_op],
            "credit customer",
            move |st| {
                let c = st.output_req(order_op)[O_C_ID].as_i64() as u64;
                (st.param_u64(0) & WD_MASK) | (c << 16)
            },
            move |row, st| {
                let total = st.output_req(order_op)[O_TOTAL].as_f64();
                let mut r = row.clone();
                r[C_BALANCE] = Value::F64(r[C_BALANCE].as_f64() + total);
                r[C_DELIVERY_CNT] = Value::I64(r[C_DELIVERY_CNT].as_i64() + 1);
                r
            },
        )
        .hint(|st| st.param_u64(0))
        .guard(&[district_op], "has undelivered order", |st| {
            let d = st.output_req(OpId(0));
            if d[D_LAST_DELIVERED].as_i64() < d[D_NEXT_O_ID].as_i64() {
                Ok(())
            } else {
                Err("no undelivered order in district")
            }
        })
        .build()
        .expect("Delivery procedure is well-formed")
}

/// StockLevel params: `[0]` district key, `[1]` threshold.
///
/// Reads the district (shared lock — the Figure 9c conflict with
/// NewOrder's exclusive district lock), the previous order's first
/// [`STOCK_LEVEL_LINES`] lines, and those lines' stock rows.
pub fn stock_level_proc() -> Procedure {
    let district_op = OpId(0);
    let mut b = ProcedureBuilder::new("StockLevel").read(tables::DISTRICT, 0, "read district");
    for l in 0..STOCK_LEVEL_LINES {
        b = b
            .read_with_key_from(
                tables::ORDER_LINE,
                &[district_op],
                "read prev order line",
                move |st| {
                    let prev_o = st.output_req(district_op)[D_NEXT_O_ID].as_i64() as u64 - 1;
                    (st.param_u64(0) & WD_MASK) | (prev_o << 8) | (l as u64 + 1)
                },
            )
            .hint(|st| st.param_u64(0));
    }
    for l in 0..STOCK_LEVEL_LINES {
        let line_op = OpId(1 + l as u16);
        b = b.read_with_key_from(tables::STOCK, &[line_op], "probe stock", move |st| {
            let ol = st.output_req(line_op);
            let supply_w = ol[OL_SUPPLY_W].as_i64() as u64;
            let i_id = ol[OL_I_ID].as_i64() as u64;
            (supply_w << W_SHIFT) | i_id
        });
        // No hint: the supply warehouse is unknown until the line is read,
        // which (correctly) keeps the district read out of any inner region.
    }
    b.build().expect("StockLevel procedure is well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;
    use chiller_common::ids::PartitionId;
    use chiller_sproc::decide_regions;

    #[test]
    fn new_order_shape() {
        for lines in [MIN_LINES, 10, MAX_LINES] {
            let p = new_order_proc(lines);
            assert_eq!(p.num_ops(), 5 + 2 * lines);
            assert_eq!(p.guards.len(), 1);
            // Order insert pk-depends on the district op.
            let order_insert = OpId(3 + lines as u16);
            assert_eq!(p.graph.pk_parents[order_insert.idx()], vec![OpId(1)]);
        }
    }

    #[test]
    fn new_order_region_split_matches_paper() {
        // 2 partitions; home warehouse on p0, one remote stock on p1.
        let lines = 5;
        let p = new_order_proc(lines);
        let home = Some(PartitionId(0));
        let remote = Some(PartitionId(1));
        let mut parts = vec![home; p.num_ops()];
        parts[3] = remote; // first stock line remote
        let mut hot = vec![false; p.num_ops()];
        hot[1] = true; // district
        let split = decide_regions(&p, &parts, &hot);
        assert_eq!(split.inner_host, Some(PartitionId(0)));
        // District + all three inserts land inner; remote stock stays outer.
        assert!(split.inner_ops.contains(&OpId(1)));
        assert!(split.inner_ops.contains(&OpId(3 + lines as u16)));
        assert!(split.outer_ops.contains(&OpId(3)));
        // The rollback guard must be decided by the inner host.
        assert_eq!(
            split.guard_sites[0],
            chiller_sproc::decision::GuardSite::Inner
        );
    }

    #[test]
    fn payment_region_split_remote_customer() {
        let p = payment_proc();
        let parts = vec![
            Some(PartitionId(0)), // warehouse
            Some(PartitionId(0)), // district
            Some(PartitionId(2)), // remote customer
            Some(PartitionId(0)), // history
        ];
        let hot = vec![true, true, false, false];
        let split = decide_regions(&p, &parts, &hot);
        assert_eq!(split.inner_host, Some(PartitionId(0)));
        assert_eq!(split.inner_ops, vec![OpId(0), OpId(1), OpId(3)]);
        assert_eq!(split.outer_ops, vec![OpId(2)]);
    }

    #[test]
    fn stock_level_never_two_region() {
        // Stock partitions unknown at decision time → district read cannot
        // be postponed (its pk-descendants may leave the partition).
        let p = stock_level_proc();
        let mut parts = vec![Some(PartitionId(0)); p.num_ops()];
        for l in 0..STOCK_LEVEL_LINES {
            parts[1 + STOCK_LEVEL_LINES + l] = None; // stock probes unknown
        }
        let mut hot = vec![false; p.num_ops()];
        hot[0] = true;
        let split = decide_regions(&p, &parts, &hot);
        assert!(!split.is_two_region());
    }

    #[test]
    fn delivery_is_fully_inner_at_home() {
        let p = delivery_proc();
        let parts = vec![Some(PartitionId(1)); p.num_ops()];
        let mut hot = vec![false; p.num_ops()];
        hot[0] = true;
        let split = decide_regions(&p, &parts, &hot);
        assert_eq!(split.inner_host, Some(PartitionId(1)));
        assert_eq!(split.inner_ops.len(), p.num_ops());
        assert!(split.outer_ops.is_empty());
    }

    #[test]
    fn all_procs_build() {
        let procs = register_procs({
            let mut n = 0;
            move |_p| {
                n += 1;
                n - 1
            }
        });
        assert_eq!(procs.new_order.len(), MAX_LINES - MIN_LINES + 1);
        assert_eq!(procs.new_order_with(5), procs.new_order[0]);
        assert_eq!(procs.stock_level, procs.delivery + 1);
    }
}
