//! Hotspot-*shifting* workload wrappers.
//!
//! The paper's §4 pipeline freezes the layout from an offline trace; the
//! adaptive subsystem exists for workloads whose hotspot drifts (flash
//! sales, time-of-day skew, trending products). [`ShiftedSource`] wraps any
//! [`InputSource`] and, from a configured instant of virtual time onward,
//! rewrites each generated input's parameters — deterministically, since
//! engines pass the virtual clock into `next_input`. The shift moves the
//! *popularity distribution* to a different key range while the underlying
//! generator (and its RNG stream) is untouched, so pre- and post-shift
//! phases are statistically identical up to relabeling.

use chiller::prelude::*;
use rand::rngs::StdRng;

/// Parameter rewriter applied to every input generated at or after the
/// shift instant.
pub type Remap = Box<dyn Fn(&mut TxnInput) + Send>;

/// An [`InputSource`] whose output is remapped after `shift_at`.
pub struct ShiftedSource<S: InputSource> {
    inner: S,
    shift_at: SimTime,
    remap: Remap,
}

impl<S: InputSource> ShiftedSource<S> {
    pub fn new(
        inner: S,
        shift_at: SimTime,
        remap: impl Fn(&mut TxnInput) + Send + 'static,
    ) -> Self {
        ShiftedSource {
            inner,
            shift_at,
            remap: Box::new(remap),
        }
    }
}

impl<S: InputSource> InputSource for ShiftedSource<S> {
    fn next_input(&mut self, rng: &mut StdRng, now: SimTime) -> TxnInput {
        let mut input = self.inner.next_input(rng, now);
        if now >= self.shift_at {
            (self.remap)(&mut input);
        }
        input
    }
}

/// Remap rotating a key parameter by `rotate` modulo `modulus`.
#[inline]
pub fn rotate_key(value: &Value, rotate: u64, modulus: u64) -> Value {
    Value::from((value.as_i64() as u64 + rotate) % modulus)
}

#[cfg(test)]
mod tests {
    use super::*;
    use chiller_common::rng::seeded;

    struct Fixed;
    impl InputSource for Fixed {
        fn next_input(&mut self, _rng: &mut StdRng, _now: SimTime) -> TxnInput {
            TxnInput {
                proc: 0,
                params: vec![Value::from(3u64), Value::from(9u64)],
            }
        }
    }

    #[test]
    fn remap_applies_only_after_shift() {
        let mut src = ShiftedSource::new(Fixed, SimTime::from_micros(10), |input| {
            for p in &mut input.params {
                *p = rotate_key(p, 100, 1_000);
            }
        });
        let mut rng = seeded(1);
        let before = src.next_input(&mut rng, SimTime::from_micros(9));
        assert_eq!(before.params[0].as_i64(), 3);
        let at = src.next_input(&mut rng, SimTime::from_micros(10));
        assert_eq!(at.params[0].as_i64(), 103);
        assert_eq!(at.params[1].as_i64(), 109);
    }

    #[test]
    fn rotation_wraps_modulus() {
        assert_eq!(rotate_key(&Value::from(900u64), 150, 1_000).as_i64(), 50);
    }
}
