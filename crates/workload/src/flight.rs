//! The paper's Figure 4 flight-booking workload, runnable end to end.
//!
//! Tables: FLIGHT (hot — popular flights are booked concurrently), CUSTOMER,
//! TAX (per-state rate, read-only), SEATS (insert-only). The stored
//! procedure is a faithful transcription of the paper's pseudo-code,
//! including the pk-dep of the seat insert on the flight read and the
//! balance/seats guard.

use chiller::prelude::*;
use chiller_common::ids::OpId;
use chiller_common::rng::Zipf;
use rand::rngs::StdRng;
use rand::Rng;
use std::sync::Arc;

pub const FLIGHT: TableId = TableId(31);
pub const CUSTOMER: TableId = TableId(32);
pub const TAX: TableId = TableId(33);
pub const SEATS: TableId = TableId(34);

// Column indices.
const F_SEATS: usize = 1;
const F_PRICE: usize = 2;
const C_NAME: usize = 1;
const C_STATE: usize = 2;
const C_BALANCE: usize = 3;
const T_RATE: usize = 1;

#[derive(Debug, Clone)]
pub struct FlightConfig {
    pub flights: u64,
    pub customers: u64,
    pub states: u64,
    /// Zipf skew over flights (hot flights sell out first).
    pub theta: f64,
    pub seats_per_flight: i64,
}

impl Default for FlightConfig {
    fn default() -> Self {
        FlightConfig {
            flights: 50,
            customers: 10_000,
            states: 50,
            theta: 1.1,
            seats_per_flight: 1_000_000, // effectively never sells out
        }
    }
}

impl FlightConfig {
    pub fn schema() -> Schema {
        let mut s = Schema::new();
        s.add(TableDef::new(
            FLIGHT,
            "flight",
            vec!["f_id", "f_seats", "f_price"],
        ));
        s.add(TableDef::new(
            CUSTOMER,
            "customer",
            vec!["c_id", "c_name", "c_state", "c_balance"],
        ));
        s.add(TableDef::new(TAX, "tax", vec!["state", "rate"]));
        s.add(TableDef::new(SEATS, "seats", vec!["cust", "name"]));
        s
    }

    pub fn initial_records(&self) -> Vec<(RecordId, Row)> {
        let mut out = Vec::new();
        for f in 0..self.flights {
            out.push((
                RecordId::new(FLIGHT, f),
                vec![
                    Value::from(f),
                    Value::I64(self.seats_per_flight),
                    Value::F64(100.0 + (f % 17) as f64 * 10.0),
                ],
            ));
        }
        for c in 0..self.customers {
            out.push((
                RecordId::new(CUSTOMER, c),
                vec![
                    Value::from(c),
                    Value::from(format!("cust{c}")),
                    Value::from(c % self.states),
                    Value::F64(1e9),
                ],
            ));
        }
        for s in 0..self.states {
            out.push((
                RecordId::new(TAX, s),
                vec![Value::from(s), Value::F64(0.01 * (s % 10) as f64)],
            ));
        }
        out
    }

    /// Hot set: every flight row (they take all the writes).
    pub fn hot_records(&self) -> Vec<RecordId> {
        (0..self.flights)
            .map(|f| RecordId::new(FLIGHT, f))
            .collect()
    }
}

/// The Figure 4 procedure. Params: `[0]` flight_id, `[1]` cust_id.
///
/// Ops: 0 read flight (for update), 1 read customer (for update),
/// 2 read tax (key from customer.state → pk-dep), 3 decrement seats,
/// 4 deduct balance (v-deps on flight & tax), 5 insert seat (pk-dep on
/// flight: the seat id is the pre-decrement seat count).
pub fn booking_proc() -> chiller_sproc::Procedure {
    ProcedureBuilder::new("BookFlight")
        .read_for_update(FLIGHT, 0, "read flight")
        .read_for_update(CUSTOMER, 1, "read customer")
        .read_with_key_from(TAX, &[OpId(1)], "read tax", |st| {
            st.output_req(OpId(1))[C_STATE].as_i64() as u64
        })
        .update_deps(FLIGHT, 0, &[OpId(0)], "seats -= 1", |row, _| {
            let mut r = row.clone();
            r[F_SEATS] = Value::I64(r[F_SEATS].as_i64() - 1);
            r
        })
        .update_deps(
            CUSTOMER,
            1,
            &[OpId(0), OpId(2)],
            "deduct cost",
            |row, st| {
                let price = st.output_req(OpId(0))[F_PRICE].as_f64();
                let rate = st.output_req(OpId(2))[T_RATE].as_f64();
                let mut r = row.clone();
                r[C_BALANCE] = Value::F64(r[C_BALANCE].as_f64() - price * (1.0 + rate));
                r
            },
        )
        .insert_with_key_from(
            SEATS,
            &[OpId(0)],
            "insert seat",
            |st| {
                let f = st.output_req(OpId(0));
                (f[0].as_i64() as u64) << 32 | f[F_SEATS].as_i64() as u64
            },
            |st| {
                vec![
                    st.params()[1].clone(),
                    st.output_req(OpId(1))[C_NAME].clone(),
                ]
            },
        )
        .value_deps(&[OpId(1)]) // Figure 4: sins has a v-dep on cread
        .hint(|st| st.param_u64(0) << 32)
        .guard(&[OpId(0), OpId(1), OpId(2)], "balance & seats", |st| {
            let f = st.output_req(OpId(0));
            let c = st.output_req(OpId(1));
            let t = st.output_req(OpId(2));
            let cost = f[F_PRICE].as_f64() * (1.0 + t[T_RATE].as_f64());
            if c[C_BALANCE].as_f64() < cost {
                return Err("insufficient balance");
            }
            if f[F_SEATS].as_i64() <= 0 {
                return Err("no seats left");
            }
            Ok(())
        })
        .build()
        .expect("booking procedure is well-formed")
}

pub struct FlightSource {
    proc: usize,
    zipf: Zipf,
    customers: u64,
}

impl FlightSource {
    pub fn new(cfg: &FlightConfig, proc: usize) -> Self {
        FlightSource {
            proc,
            zipf: Zipf::new(cfg.flights as usize, cfg.theta),
            customers: cfg.customers,
        }
    }
}

impl InputSource for FlightSource {
    fn next_input(&mut self, rng: &mut StdRng, _now: SimTime) -> TxnInput {
        let flight = self.zipf.sample(rng) as u64;
        let cust = rng.gen_range(0..self.customers);
        TxnInput {
            proc: self.proc,
            params: vec![Value::from(flight), Value::from(cust)],
        }
    }
}

/// Placement co-locating each flight with its seats (the partitioning
/// Chiller's algorithm produces: a flight's pk-dependent inserts must share
/// its partition for the inner region to be legal).
pub struct FlightPlacement {
    pub partitions: u32,
}

impl Placement for FlightPlacement {
    fn partition_of(&self, record: RecordId) -> PartitionId {
        let group = match record.table {
            FLIGHT => record.key,
            SEATS => record.key >> 32, // flight id prefix
            CUSTOMER | TAX => {
                return chiller_storage::placement::HashPlacement::new(self.partitions)
                    .partition_of(record)
            }
            _ => record.key,
        };
        PartitionId((group % self.partitions as u64) as u32)
    }
}

/// Build the flight cluster.
pub fn build_cluster(
    cfg: &FlightConfig,
    nodes: usize,
    protocol: Protocol,
    sim: SimConfig,
) -> Cluster {
    let mut builder = ClusterBuilder::new(FlightConfig::schema(), nodes);
    let proc = builder.register_proc(booking_proc());
    builder
        .protocol(protocol)
        .config(sim)
        .placement(Arc::new(FlightPlacement {
            partitions: nodes as u32,
        }))
        .hot_records(cfg.hot_records())
        .load(cfg.initial_records());
    let cfg = cfg.clone();
    builder.source_per_node(move |_| Box::new(FlightSource::new(&cfg, proc)));
    builder.build().expect("valid flight cluster")
}

#[cfg(test)]
mod tests {
    use super::*;
    use chiller::cluster::RunSpec;

    #[test]
    fn booking_graph_matches_figure4() {
        let p = booking_proc();
        // sins pk-dep on fread; tax pk-dep on cread; cupd v-deps only.
        assert_eq!(p.graph.pk_parents[5], vec![OpId(0)]);
        assert_eq!(p.graph.pk_parents[2], vec![OpId(1)]);
        assert!(p.graph.pk_parents[4].is_empty());
        assert_eq!(p.graph.v_parents[4], vec![OpId(0), OpId(2)]);
    }

    #[test]
    fn bookings_run_and_decrement_seats() {
        let cfg = FlightConfig {
            flights: 8,
            customers: 100,
            ..Default::default()
        };
        let mut cluster = build_cluster(&cfg, 4, Protocol::Chiller, SimConfig::default());
        let report = cluster.run(RunSpec::millis(1, 5));
        assert!(report.total_commits() > 50, "{}", report.summary());
        cluster.quiesce();
        // Seats sold == seats decremented == seat rows inserted.
        let mut sold = 0i64;
        let mut seat_rows = 0usize;
        for engine in cluster.engines() {
            for (_, row) in engine.store().table(FLIGHT).iter() {
                sold += cfg.seats_per_flight - row[F_SEATS].as_i64();
            }
            seat_rows += engine.store().table(SEATS).num_records();
        }
        assert_eq!(sold as usize, seat_rows, "every booking inserts one seat");
        for engine in cluster.engines() {
            assert!(engine.store().all_locks_free());
        }
    }

    #[test]
    fn sells_out_cleanly_with_finite_seats() {
        // A tiny flight inventory: once sold out, the guard aborts further
        // bookings (logic aborts, not contention aborts).
        let cfg = FlightConfig {
            flights: 2,
            customers: 50,
            seats_per_flight: 5,
            theta: 0.0,
            ..Default::default()
        };
        let mut cluster = build_cluster(&cfg, 2, Protocol::Chiller, SimConfig::default());
        let report = cluster.run(RunSpec::millis(0, 5));
        // At most 10 seats exist.
        assert!(report.total_commits() <= 10);
        cluster.quiesce();
        let mut remaining = 0;
        for engine in cluster.engines() {
            for (_, row) in engine.store().table(FLIGHT).iter() {
                let s = row[F_SEATS].as_i64();
                assert!(s >= 0, "overselling must be impossible");
                remaining += s;
            }
        }
        assert_eq!(remaining as u64 + report.total_commits(), 10);
    }
}
