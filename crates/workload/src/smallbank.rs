//! SmallBank: the classic write-heavy banking microbenchmark, adapted so
//! every procedure's balance effect is *countable* from the run metrics.
//!
//! Two tables per customer — CHECKING and SAVINGS — and six procedures:
//! Balance (read-only), DepositChecking (+1.0 to the total), TransactSavings
//! (internal checking→savings move, conserving), WriteCheck (−1.0, guarded),
//! Amalgamate (sweep one customer into another, conserving), SendPayment
//! (checking→checking transfer, guarded, conserving). Every
//! balance-changing procedure moves a fixed 1.0, so after quiescence
//!
//! ```text
//! total == initial + commits(DepositChecking) − commits(WriteCheck)
//! ```
//!
//! holds exactly under serializability — the invariant
//! [`assert_smallbank_invariants`] pins. Unlike the transfer workload the
//! mix is write-heavy on a small hot set (classic SmallBank skew), which
//! makes it the natural certification target for the black-box
//! serializability checker: run with `CHILLER_CHECK=full` (or
//! `ClusterBuilder::check`) and call [`Cluster::check_history`] /
//! [`Cluster::expect_serializable`] after quiescing.

use chiller::prelude::*;
use chiller_common::ids::OpId;
use rand::rngs::StdRng;
use rand::Rng;
use std::sync::Arc;

pub const CHECKING: TableId = TableId(51);
pub const SAVINGS: TableId = TableId(52);

/// Starting balance of every checking and savings row.
pub const INITIAL_BALANCE: f64 = 100.0;

/// Fixed amount moved by every balance-changing procedure (what makes the
/// conservation invariant countable from per-type commit counts).
pub const AMOUNT: f64 = 1.0;

// Column index of the balance in both tables.
const BAL: usize = 1;

#[derive(Debug, Clone)]
pub struct SmallBankConfig {
    pub accounts: u64,
    /// Size of the hot set (accounts `0..hot_accounts`).
    pub hot_accounts: u64,
    /// Fraction of procedure invocations whose account(s) are hot.
    pub hot_fraction: f64,
}

impl Default for SmallBankConfig {
    fn default() -> Self {
        SmallBankConfig {
            accounts: 1_000,
            hot_accounts: 8,
            hot_fraction: 0.25,
        }
    }
}

impl SmallBankConfig {
    pub fn schema() -> Schema {
        let mut s = Schema::new();
        s.add(TableDef::new(CHECKING, "checking", vec!["id", "balance"]));
        s.add(TableDef::new(SAVINGS, "savings", vec!["id", "balance"]));
        s
    }

    pub fn initial_records(&self) -> Vec<(RecordId, Row)> {
        (0..self.accounts)
            .flat_map(|k| {
                [
                    (
                        RecordId::new(CHECKING, k),
                        vec![Value::from(k), Value::F64(INITIAL_BALANCE)],
                    ),
                    (
                        RecordId::new(SAVINGS, k),
                        vec![Value::from(k), Value::F64(INITIAL_BALANCE)],
                    ),
                ]
            })
            .collect()
    }

    /// Total balance loaded at start (both tables).
    pub fn initial_total(&self) -> f64 {
        self.accounts as f64 * 2.0 * INITIAL_BALANCE
    }

    /// Hot set: both rows of every hot account (the write mix hammers
    /// checking, Amalgamate/TransactSavings touch savings too).
    pub fn hot_records(&self) -> Vec<RecordId> {
        (0..self.hot_accounts)
            .flat_map(|k| [RecordId::new(CHECKING, k), RecordId::new(SAVINGS, k)])
            .collect()
    }

    /// Placement co-locating each account's checking and savings rows (a
    /// customer's pair is always touched together) and pinning the hot set
    /// on partition 0, the layout Chiller's contention-aware partitioner
    /// produces for co-written hot records.
    pub fn placement(&self, partitions: u32) -> SmallBankPlacement {
        SmallBankPlacement {
            partitions,
            hot_accounts: self.hot_accounts,
        }
    }
}

/// See [`SmallBankConfig::placement`].
pub struct SmallBankPlacement {
    pub partitions: u32,
    pub hot_accounts: u64,
}

impl Placement for SmallBankPlacement {
    fn partition_of(&self, record: RecordId) -> PartitionId {
        if record.key < self.hot_accounts {
            return PartitionId(0);
        }
        PartitionId((record.key % self.partitions as u64) as u32)
    }
}

/// Procedure ids of the registered SmallBank mix, in registration order.
#[derive(Debug, Clone, Copy)]
pub struct SmallBankProcs {
    pub balance: usize,
    pub deposit_checking: usize,
    pub transact_savings: usize,
    pub write_check: usize,
    pub amalgamate: usize,
    pub send_payment: usize,
}

/// Build and register all six procedures through `register` (typically
/// `ClusterBuilder::register_proc`).
pub fn register_procs(
    mut register: impl FnMut(chiller_sproc::Procedure) -> usize,
) -> SmallBankProcs {
    SmallBankProcs {
        balance: register(balance_proc()),
        deposit_checking: register(deposit_checking_proc()),
        transact_savings: register(transact_savings_proc()),
        write_check: register(write_check_proc()),
        amalgamate: register(amalgamate_proc()),
        send_payment: register(send_payment_proc()),
    }
}

/// Read-only: both balances of one account. Params: `[0]` account.
pub fn balance_proc() -> chiller_sproc::Procedure {
    ProcedureBuilder::new("Balance")
        .read(CHECKING, 0, "read checking")
        .read(SAVINGS, 0, "read savings")
        .build()
        .expect("Balance procedure is well-formed")
}

/// Checking += 1.0 (the only procedure that grows the total).
/// Params: `[0]` account.
pub fn deposit_checking_proc() -> chiller_sproc::Procedure {
    ProcedureBuilder::new("DepositChecking")
        .update(CHECKING, 0, "deposit", |row, _| {
            let mut r = row.clone();
            r[BAL] = Value::F64(r[BAL].as_f64() + AMOUNT);
            r
        })
        .build()
        .expect("DepositChecking procedure is well-formed")
}

/// Move 1.0 from checking to savings of one account (conserving; the
/// classic benchmark deposits fresh money here, but an internal move keeps
/// the conservation invariant countable). Params: `[0]` account.
pub fn transact_savings_proc() -> chiller_sproc::Procedure {
    ProcedureBuilder::new("TransactSavings")
        .update(CHECKING, 0, "debit checking", |row, _| {
            let mut r = row.clone();
            r[BAL] = Value::F64(r[BAL].as_f64() - AMOUNT);
            r
        })
        .update(SAVINGS, 0, "credit savings", |row, _| {
            let mut r = row.clone();
            r[BAL] = Value::F64(r[BAL].as_f64() + AMOUNT);
            r
        })
        .build()
        .expect("TransactSavings procedure is well-formed")
}

/// Cash a check: checking −= 1.0, guarded by sufficient funds — an
/// insufficient balance is a *logic* abort (final, not retried), so only
/// committed WriteChecks subtract from the total. Params: `[0]` account.
pub fn write_check_proc() -> chiller_sproc::Procedure {
    ProcedureBuilder::new("WriteCheck")
        .read_for_update(CHECKING, 0, "read checking")
        .update_deps(CHECKING, 0, &[OpId(0)], "cash check", |row, _| {
            let mut r = row.clone();
            r[BAL] = Value::F64(r[BAL].as_f64() - AMOUNT);
            r
        })
        .guard(&[OpId(0)], "sufficient funds", |st| {
            if st.output_req(OpId(0))[BAL].as_f64() < AMOUNT {
                return Err("insufficient funds");
            }
            Ok(())
        })
        .build()
        .expect("WriteCheck procedure is well-formed")
}

/// Sweep account `a` into account `b`'s checking: zero both of `a`'s
/// balances, credit their pre-image sum to `b` (conserving).
/// Params: `[0]` src account, `[1]` dst account (distinct).
pub fn amalgamate_proc() -> chiller_sproc::Procedure {
    ProcedureBuilder::new("Amalgamate")
        .read_for_update(SAVINGS, 0, "read src savings")
        .read_for_update(CHECKING, 0, "read src checking")
        .update_deps(SAVINGS, 0, &[OpId(0)], "zero src savings", |row, _| {
            let mut r = row.clone();
            r[BAL] = Value::F64(0.0);
            r
        })
        .update_deps(CHECKING, 0, &[OpId(1)], "zero src checking", |row, _| {
            let mut r = row.clone();
            r[BAL] = Value::F64(0.0);
            r
        })
        .update_deps(
            CHECKING,
            1,
            &[OpId(0), OpId(1)],
            "credit dst checking",
            |row, st| {
                let swept =
                    st.output_req(OpId(0))[BAL].as_f64() + st.output_req(OpId(1))[BAL].as_f64();
                let mut r = row.clone();
                r[BAL] = Value::F64(r[BAL].as_f64() + swept);
                r
            },
        )
        .build()
        .expect("Amalgamate procedure is well-formed")
}

/// Checking→checking transfer of 1.0, guarded by sufficient funds at the
/// source (conserving whether it commits or logic-aborts).
/// Params: `[0]` src account, `[1]` dst account (distinct).
pub fn send_payment_proc() -> chiller_sproc::Procedure {
    ProcedureBuilder::new("SendPayment")
        .read_for_update(CHECKING, 0, "read src checking")
        .update_deps(CHECKING, 0, &[OpId(0)], "debit src", |row, _| {
            let mut r = row.clone();
            r[BAL] = Value::F64(r[BAL].as_f64() - AMOUNT);
            r
        })
        .update(CHECKING, 1, "credit dst", |row, _| {
            let mut r = row.clone();
            r[BAL] = Value::F64(r[BAL].as_f64() + AMOUNT);
            r
        })
        .guard(&[OpId(0)], "sufficient funds", |st| {
            if st.output_req(OpId(0))[BAL].as_f64() < AMOUNT {
                return Err("insufficient funds");
            }
            Ok(())
        })
        .build()
        .expect("SendPayment procedure is well-formed")
}

/// The classic SmallBank mix, write-heavy: 15% Balance, 15%
/// DepositChecking, 15% TransactSavings, 25% WriteCheck, 10% Amalgamate,
/// 20% SendPayment. Account picks are hot with probability
/// `hot_fraction`; two-account procedures always use distinct endpoints
/// drawn from the same temperature class.
pub struct SmallBankSource {
    cfg: SmallBankConfig,
    procs: SmallBankProcs,
}

impl SmallBankSource {
    pub fn new(cfg: SmallBankConfig, procs: SmallBankProcs) -> Self {
        SmallBankSource { cfg, procs }
    }

    fn pick_account(&self, rng: &mut StdRng) -> u64 {
        let c = &self.cfg;
        if rng.gen::<f64>() < c.hot_fraction && c.hot_accounts >= 1 {
            rng.gen_range(0..c.hot_accounts)
        } else {
            rng.gen_range(c.hot_accounts..c.accounts)
        }
    }

    fn pick_pair(&self, rng: &mut StdRng) -> (u64, u64) {
        let c = &self.cfg;
        if rng.gen::<f64>() < c.hot_fraction && c.hot_accounts >= 2 {
            let a = rng.gen_range(0..c.hot_accounts);
            let mut b = rng.gen_range(0..c.hot_accounts);
            if b == a {
                b = (b + 1) % c.hot_accounts;
            }
            (a, b)
        } else {
            let cold = c.accounts - c.hot_accounts;
            let a = rng.gen_range(c.hot_accounts..c.accounts);
            let mut b = rng.gen_range(c.hot_accounts..c.accounts);
            if b == a {
                b = c.hot_accounts + (b + 1 - c.hot_accounts) % cold;
            }
            (a, b)
        }
    }
}

impl InputSource for SmallBankSource {
    fn next_input(&mut self, rng: &mut StdRng, _now: SimTime) -> TxnInput {
        let roll = rng.gen_range(0u32..100);
        let p = &self.procs;
        if roll < 15 {
            let a = self.pick_account(rng);
            TxnInput {
                proc: p.balance,
                params: vec![Value::from(a)],
            }
        } else if roll < 30 {
            let a = self.pick_account(rng);
            TxnInput {
                proc: p.deposit_checking,
                params: vec![Value::from(a)],
            }
        } else if roll < 45 {
            let a = self.pick_account(rng);
            TxnInput {
                proc: p.transact_savings,
                params: vec![Value::from(a)],
            }
        } else if roll < 70 {
            let a = self.pick_account(rng);
            TxnInput {
                proc: p.write_check,
                params: vec![Value::from(a)],
            }
        } else if roll < 80 {
            let (a, b) = self.pick_pair(rng);
            TxnInput {
                proc: p.amalgamate,
                params: vec![Value::from(a), Value::from(b)],
            }
        } else {
            let (a, b) = self.pick_pair(rng);
            TxnInput {
                proc: p.send_payment,
                params: vec![Value::from(a), Value::from(b)],
            }
        }
    }
}

/// Build a SmallBank cluster on the deterministic simulator.
pub fn build_cluster(
    cfg: &SmallBankConfig,
    nodes: usize,
    protocol: Protocol,
    sim: SimConfig,
) -> Cluster {
    build_cluster_checked(cfg, nodes, protocol, sim, Backend::Simulated, None, None)
}

/// Build a SmallBank cluster on an explicit backend, optionally with an
/// explicit mailbox kind and serializability-check mode (`None` defers to
/// the `CHILLER_MAILBOX` / `CHILLER_CHECK` environment knobs). The
/// checker certification suites drive all protocols × backends through
/// this door.
pub fn build_cluster_checked(
    cfg: &SmallBankConfig,
    nodes: usize,
    protocol: Protocol,
    sim: SimConfig,
    backend: Backend,
    mailbox: Option<MailboxKind>,
    check: Option<CheckMode>,
) -> Cluster {
    build_cluster_durable(cfg, nodes, protocol, sim, backend, mailbox, check, None)
}

/// [`build_cluster_checked`] with an explicit durable directory (`None`
/// defers to the `CHILLER_WAL` environment knob): per-node redo logs land
/// under `dir` and a rebuild against the same directory recovers.
#[allow(clippy::too_many_arguments)]
pub fn build_cluster_durable(
    cfg: &SmallBankConfig,
    nodes: usize,
    protocol: Protocol,
    sim: SimConfig,
    backend: Backend,
    mailbox: Option<MailboxKind>,
    check: Option<CheckMode>,
    durable: Option<&std::path::Path>,
) -> Cluster {
    let mut builder = ClusterBuilder::new(SmallBankConfig::schema(), nodes);
    let procs = register_procs(|p| builder.register_proc(p));
    builder
        .protocol(protocol)
        .config(sim)
        .runtime(backend)
        .placement(Arc::new(cfg.placement(nodes as u32)))
        .hot_records(cfg.hot_records())
        .load(cfg.initial_records());
    if let Some(kind) = mailbox {
        builder.mailbox(kind);
    }
    if let Some(mode) = check {
        builder.check(mode);
    }
    if let Some(dir) = durable {
        builder.durable(dir);
    }
    let cfg = cfg.clone();
    builder.source_per_node(move |_| Box::new(SmallBankSource::new(cfg.clone(), procs)));
    builder.build().expect("valid smallbank cluster")
}

/// Sum of every checking and savings balance across primaries.
pub fn total_balance(cluster: &Cluster) -> f64 {
    cluster
        .engines()
        .iter()
        .flat_map(|e| {
            e.store()
                .table(CHECKING)
                .iter()
                .chain(e.store().table(SAVINGS).iter())
        })
        .map(|(_, row)| row[BAL].as_f64())
        .sum()
}

/// The SmallBank serializability contract, checked post-quiescence: the
/// total balance equals the initial total plus the *committed* deposit
/// count minus the *committed* check count (every other procedure
/// conserves, and guard failures are logic aborts that wrote nothing) —
/// plus the usual no-leaked-locks / no-zombies / no-divergence conditions.
///
/// Commit counts are read from the live engine metrics so transactions
/// that committed during the quiesce drain are included. The counts must
/// cover **every** commit since load: run with a zero warm-up window
/// (`RunSpec::millis(0, ..)`), because warm-up commits are discarded from
/// the metrics while their balance effects persist.
pub fn assert_smallbank_invariants(cluster: &Cluster, cfg: &SmallBankConfig, label: &str) {
    assert_smallbank_invariants_recovered(cluster, cfg, &[], label);
}

/// Crash-recovery variant of [`assert_smallbank_invariants`]: the balance
/// must equal the initial total adjusted by every commit across all of the
/// cluster's incarnations, not just the live engines' counters. `extra`
/// carries per-procedure commit counts from before the current
/// incarnation — the acked counts a [`chiller::CrashSnapshot`] captured at
/// each kill plus the [`chiller::RecoveryReport::recovered_unacked`]
/// commits recovery resolved that were never acked (their balance effects
/// survive in the recovered stores but no metrics counter ever saw them).
pub fn assert_smallbank_invariants_recovered(
    cluster: &Cluster,
    cfg: &SmallBankConfig,
    extra: &[&std::collections::BTreeMap<String, u64>],
    label: &str,
) {
    let count = |name: &str| -> u64 {
        let live: u64 = cluster
            .engines()
            .iter()
            .map(|e| e.metrics().per_type.get(name).map_or(0, |s| s.commits))
            .sum();
        live + extra
            .iter()
            .map(|m| m.get(name).copied().unwrap_or(0))
            .sum::<u64>()
    };
    let deposits = count("DepositChecking");
    let checks = count("WriteCheck");
    let expect = cfg.initial_total() + deposits as f64 * AMOUNT - checks as f64 * AMOUNT;
    let total = total_balance(cluster);
    assert!(
        (total - expect).abs() < 1e-6,
        "{label}: balance {total} != {expect} \
         (initial {} + {deposits} deposits - {checks} checks)",
        cfg.initial_total()
    );
    for engine in cluster.engines() {
        assert!(
            engine.store().all_locks_free(),
            "{label}: leaked locks on node {}",
            engine.store().partition
        );
        assert_eq!(engine.open_txns(), 0, "{label}: zombie transactions");
    }
    assert_eq!(
        cluster.replica_divergence(),
        0,
        "{label}: replicas diverged"
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use chiller::cluster::RunSpec;
    use chiller_common::rng::seeded;

    #[test]
    fn conservation_under_all_protocols() {
        for protocol in [Protocol::Chiller, Protocol::TwoPhaseLocking, Protocol::Occ] {
            let cfg = SmallBankConfig::default();
            let mut cluster = build_cluster(&cfg, 3, protocol, SimConfig::default());
            let report = cluster.run(RunSpec::millis(0, 5));
            assert!(report.total_commits() > 0, "{protocol}");
            cluster.quiesce();
            assert_smallbank_invariants(&cluster, &cfg, &format!("{protocol}"));
        }
    }

    #[test]
    fn mix_exercises_every_procedure() {
        let cfg = SmallBankConfig::default();
        let mut cluster = build_cluster(&cfg, 2, Protocol::Chiller, SimConfig::default());
        let report = cluster.run(RunSpec::millis(0, 10));
        cluster.quiesce();
        for name in [
            "Balance",
            "DepositChecking",
            "TransactSavings",
            "WriteCheck",
            "Amalgamate",
            "SendPayment",
        ] {
            let stats = report
                .metrics
                .per_type
                .get(name)
                .unwrap_or_else(|| panic!("no metrics for {name}"));
            assert!(stats.commits > 0, "{name} never committed");
        }
    }

    #[test]
    fn pair_endpoints_always_distinct() {
        let cfg = SmallBankConfig::default();
        let procs = SmallBankProcs {
            balance: 0,
            deposit_checking: 1,
            transact_savings: 2,
            write_check: 3,
            amalgamate: 4,
            send_payment: 5,
        };
        let mut src = SmallBankSource::new(cfg, procs);
        let mut rng = seeded(7);
        for _ in 0..10_000 {
            let input = src.next_input(&mut rng, SimTime::ZERO);
            if input.params.len() == 2 {
                assert_ne!(input.params[0].as_i64(), input.params[1].as_i64());
            }
        }
    }

    #[test]
    fn hot_accounts_colocated_on_partition_zero() {
        let cfg = SmallBankConfig::default();
        let p = cfg.placement(4);
        for k in 0..cfg.hot_accounts {
            assert_eq!(p.partition_of(RecordId::new(CHECKING, k)), PartitionId(0));
            assert_eq!(p.partition_of(RecordId::new(SAVINGS, k)), PartitionId(0));
        }
        // A cold account's pair lands together too.
        for k in [100u64, 555, 999] {
            assert_eq!(
                p.partition_of(RecordId::new(CHECKING, k)),
                p.partition_of(RecordId::new(SAVINGS, k))
            );
        }
    }
}
