//! YCSB-style key-value microworkload with Zipfian skew.
//!
//! Not part of the paper's evaluation (the paper criticizes synthetic-only
//! evaluations), but indispensable as a controlled environment for studying
//! the engines: a single table, transactions of `ops_per_txn` point
//! reads/updates, Zipf-`theta` key skew, and a read fraction — the knobs
//! every concurrency-control study turns.

use chiller::prelude::*;
use chiller_common::rng::Zipf;
use rand::rngs::StdRng;
use rand::Rng;
use std::sync::Arc;

pub const KV: TableId = TableId(51);

#[derive(Debug, Clone)]
pub struct YcsbConfig {
    pub records: u64,
    /// Operations per transaction.
    pub ops_per_txn: usize,
    /// Fraction of operations that are reads (rest are read-modify-writes).
    pub read_fraction: f64,
    /// Zipf skew over keys (0.0 = uniform; 0.99 = standard YCSB hotspot).
    pub theta: f64,
}

impl Default for YcsbConfig {
    fn default() -> Self {
        YcsbConfig {
            records: 100_000,
            ops_per_txn: 8,
            read_fraction: 0.5,
            theta: 0.9,
        }
    }
}

impl YcsbConfig {
    pub fn schema() -> Schema {
        let mut s = Schema::new();
        s.add(TableDef::new(KV, "kv", vec!["key", "field"]));
        s
    }

    pub fn initial_records(&self) -> Vec<(RecordId, Row)> {
        (0..self.records)
            .map(|k| (RecordId::new(KV, k), vec![Value::from(k), Value::I64(0)]))
            .collect()
    }

    /// The hottest keys (for Chiller's lookup table).
    pub fn hot_records(&self, n: usize) -> Vec<RecordId> {
        (0..n as u64).map(|k| RecordId::new(KV, k)).collect()
    }
}

/// One procedure per (reads, writes) split of a transaction. Params:
/// one key per op, reads first.
pub fn ycsb_proc(reads: usize, writes: usize) -> chiller_sproc::Procedure {
    let mut b = ProcedureBuilder::new("Ycsb");
    for slot in 0..reads {
        b = b.read(KV, slot, "read");
    }
    for slot in 0..writes {
        b = b.update(KV, reads + slot, "rmw", |row, _| {
            let mut r = row.clone();
            r[1] = Value::I64(r[1].as_i64() + 1);
            r
        });
    }
    b.build().expect("ycsb procedure is well-formed")
}

/// Procedure ids for every read/write split of `ops_per_txn` operations.
#[derive(Debug, Clone)]
pub struct YcsbProcs {
    /// `procs[r]` = transaction with `r` reads and `ops - r` writes.
    pub procs: Vec<usize>,
    pub ops: usize,
}

pub fn register_procs(
    ops: usize,
    mut register: impl FnMut(chiller_sproc::Procedure) -> usize,
) -> YcsbProcs {
    YcsbProcs {
        procs: (0..=ops).map(|r| register(ycsb_proc(r, ops - r))).collect(),
        ops,
    }
}

pub struct YcsbSource {
    cfg: YcsbConfig,
    procs: YcsbProcs,
    zipf: Zipf,
}

impl YcsbSource {
    pub fn new(cfg: &YcsbConfig, procs: YcsbProcs) -> Self {
        YcsbSource {
            zipf: Zipf::new(cfg.records as usize, cfg.theta),
            cfg: cfg.clone(),
            procs,
        }
    }
}

impl InputSource for YcsbSource {
    fn next_input(&mut self, rng: &mut StdRng, _now: SimTime) -> TxnInput {
        let ops = self.cfg.ops_per_txn;
        let reads = (0..ops)
            .filter(|_| rng.gen::<f64>() < self.cfg.read_fraction)
            .count();
        // Distinct keys, reads first (matching the registered layout).
        let mut keys: Vec<u64> = Vec::with_capacity(ops);
        while keys.len() < ops {
            let k = self.zipf.sample(rng) as u64;
            if !keys.contains(&k) {
                keys.push(k);
            }
        }
        TxnInput {
            proc: self.procs.procs[reads],
            params: keys.into_iter().map(Value::from).collect(),
        }
    }
}

/// A hotspot-shifting YCSB source: from `shift_at` on, every key `k`
/// rotates to `(k + rotate) % records`, relocating the whole Zipf head to
/// a different key range while keeping the skew shape identical.
pub fn shifting_source(
    cfg: &YcsbConfig,
    procs: YcsbProcs,
    shift_at: SimTime,
    rotate: u64,
) -> crate::shift::ShiftedSource<YcsbSource> {
    let records = cfg.records;
    crate::shift::ShiftedSource::new(YcsbSource::new(cfg, procs), shift_at, move |input| {
        for p in &mut input.params {
            *p = crate::shift::rotate_key(p, rotate, records);
        }
    })
}

/// Build a YCSB cluster whose hotspot rotates by `rotate` keys at
/// `shift_at` — the drifting workload of the adaptive-recovery experiment.
/// `adaptive` switches the cluster between the frozen layout (None) and
/// the online feedback loop (Some).
#[allow(clippy::too_many_arguments)]
pub fn build_shifting_cluster(
    cfg: &YcsbConfig,
    nodes: usize,
    hot_lookup: usize,
    protocol: Protocol,
    sim: SimConfig,
    shift_at: SimTime,
    rotate: u64,
    adaptive: Option<AdaptiveConfig>,
) -> Cluster {
    let mut builder = ClusterBuilder::new(YcsbConfig::schema(), nodes);
    let procs = register_procs(cfg.ops_per_txn, |p| builder.register_proc(p));
    let placement: Arc<dyn Placement + Send + Sync> = if hot_lookup > 0 {
        Arc::new(LookupTable::with_entries(
            (0..hot_lookup as u64).map(|k| (RecordId::new(KV, k), PartitionId(0))),
            HashPlacement::new(nodes as u32),
        ))
    } else {
        Arc::new(HashPlacement::new(nodes as u32))
    };
    builder
        .protocol(protocol)
        .config(sim)
        .placement(placement)
        .hot_records(cfg.hot_records(hot_lookup))
        .load(cfg.initial_records());
    if let Some(a) = adaptive {
        builder.adaptive(a);
    }
    let cfg2 = cfg.clone();
    builder.source_per_node(move |_| {
        Box::new(shifting_source(&cfg2, procs.clone(), shift_at, rotate))
    });
    builder.build().expect("valid shifting ycsb cluster")
}

/// Build a YCSB cluster; hot keys get lookup entries on partition 0 when
/// `hot_lookup > 0` (the Chiller layout).
pub fn build_cluster(
    cfg: &YcsbConfig,
    nodes: usize,
    hot_lookup: usize,
    protocol: Protocol,
    sim: SimConfig,
) -> Cluster {
    let mut builder = ClusterBuilder::new(YcsbConfig::schema(), nodes);
    let procs = register_procs(cfg.ops_per_txn, |p| builder.register_proc(p));
    let placement: Arc<dyn Placement + Send + Sync> = if hot_lookup > 0 {
        Arc::new(LookupTable::with_entries(
            (0..hot_lookup as u64).map(|k| (RecordId::new(KV, k), PartitionId(0))),
            HashPlacement::new(nodes as u32),
        ))
    } else {
        Arc::new(HashPlacement::new(nodes as u32))
    };
    builder
        .protocol(protocol)
        .config(sim)
        .placement(placement)
        .hot_records(cfg.hot_records(hot_lookup))
        .load(cfg.initial_records());
    let cfg2 = cfg.clone();
    builder.source_per_node(move |_| Box::new(YcsbSource::new(&cfg2, procs.clone())));
    builder.build().expect("valid ycsb cluster")
}

#[cfg(test)]
mod tests {
    use super::*;
    use chiller::cluster::RunSpec;
    use chiller_common::rng::seeded;

    #[test]
    fn proc_shapes() {
        let p = ycsb_proc(3, 5);
        assert_eq!(p.num_ops(), 8);
        assert!(matches!(
            p.op(chiller_common::ids::OpId(0)).kind,
            chiller_sproc::OpKind::Read { .. }
        ));
        assert!(p.op(chiller_common::ids::OpId(7)).kind.is_write());
    }

    #[test]
    fn source_respects_read_fraction() {
        let cfg = YcsbConfig {
            read_fraction: 0.75,
            ..Default::default()
        };
        let procs = register_procs(cfg.ops_per_txn, {
            let mut n = 0;
            move |_| {
                n += 1;
                n - 1
            }
        });
        let mut src = YcsbSource::new(&cfg, procs);
        let mut rng = seeded(4);
        let mut reads = 0usize;
        let n = 5_000;
        for _ in 0..n {
            let input = src.next_input(&mut rng, SimTime::ZERO);
            reads += input.proc; // proc index == number of reads
        }
        let frac = reads as f64 / (n * cfg.ops_per_txn) as f64;
        assert!((frac - 0.75).abs() < 0.02, "read fraction {frac}");
    }

    #[test]
    fn updates_are_counted_exactly_once() {
        // Sum of all fields == number of committed write ops.
        let cfg = YcsbConfig {
            records: 5_000,
            ops_per_txn: 4,
            read_fraction: 0.5,
            theta: 0.5,
        };
        let mut sim = SimConfig::default();
        sim.engine.concurrency = 3;
        sim.seed = 21;
        let mut cluster = build_cluster(&cfg, 3, 0, Protocol::Chiller, sim);
        let report = cluster.run(RunSpec::millis(1, 5));
        assert!(report.total_commits() > 100);
        cluster.quiesce();
        let total: i64 = cluster
            .engines()
            .iter()
            .flat_map(|e| e.store().table(KV).iter())
            .map(|(_, row)| row[1].as_i64())
            .sum();
        assert!(total > 0);
        // Cross-check against replica copies.
        let mut replica_total = 0i64;
        for e in cluster.engines() {
            for p in 0..cluster.num_nodes() as u32 {
                if let Some(r) = e.replica_store(PartitionId(p)) {
                    replica_total += r
                        .table(KV)
                        .iter()
                        .map(|(_, row)| row[1].as_i64())
                        .sum::<i64>();
                }
            }
        }
        assert_eq!(total, replica_total, "replicas diverged from primaries");
    }

    #[test]
    fn skew_drives_contention() {
        let run = |theta: f64| {
            let cfg = YcsbConfig {
                records: 20_000,
                theta,
                read_fraction: 0.2,
                ..Default::default()
            };
            let mut sim = SimConfig::default();
            sim.engine.concurrency = 6;
            sim.seed = 33;
            let mut cluster = build_cluster(&cfg, 4, 0, Protocol::TwoPhaseLocking, sim);
            cluster.run(RunSpec::millis(1, 5)).abort_rate()
        };
        let uniform = run(0.0);
        let skewed = run(1.1);
        assert!(
            skewed > uniform + 0.02,
            "skew must raise the abort rate (uniform {uniform}, skewed {skewed})"
        );
    }

    #[test]
    fn hot_lookup_reduces_aborts_under_chiller() {
        let run = |hot: usize, protocol: Protocol| {
            let cfg = YcsbConfig {
                records: 20_000,
                theta: 1.2,
                read_fraction: 0.2,
                ops_per_txn: 4,
            };
            let mut sim = SimConfig::default();
            sim.engine.concurrency = 6;
            sim.seed = 5;
            let mut cluster = build_cluster(&cfg, 4, hot, protocol, sim);
            cluster.run(RunSpec::millis(1, 8)).abort_rate()
        };
        let chiller = run(16, Protocol::Chiller);
        let two_pl = run(0, Protocol::TwoPhaseLocking);
        assert!(
            chiller < two_pl,
            "chiller with hot lookup ({chiller:.3}) must beat 2PL ({two_pl:.3})"
        );
    }
}
