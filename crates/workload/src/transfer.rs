//! Money-transfer microworkload with a controllable hot set.
//!
//! Used by the quickstart example, ablation benches and tests: `n` accounts,
//! a fraction of transfers touching a small hot set, total balance conserved
//! under serializability.

use chiller::prelude::*;
use rand::rngs::StdRng;
use rand::Rng;
use std::sync::Arc;

pub const ACCOUNTS: TableId = TableId(41);
pub const INITIAL_BALANCE: f64 = 1_000.0;

#[derive(Debug, Clone)]
pub struct TransferConfig {
    pub accounts: u64,
    /// Size of the hot set (accounts `0..hot_set`).
    pub hot_set: u64,
    /// Fraction of transfers where both endpoints are hot.
    pub hot_fraction: f64,
}

impl Default for TransferConfig {
    fn default() -> Self {
        TransferConfig {
            accounts: 1_000,
            hot_set: 8,
            hot_fraction: 0.2,
        }
    }
}

impl TransferConfig {
    pub fn schema() -> Schema {
        let mut s = Schema::new();
        s.add(TableDef::new(ACCOUNTS, "accounts", vec!["id", "balance"]));
        s
    }

    pub fn initial_records(&self) -> Vec<(RecordId, Row)> {
        (0..self.accounts)
            .map(|k| {
                (
                    RecordId::new(ACCOUNTS, k),
                    vec![Value::from(k), Value::F64(INITIAL_BALANCE)],
                )
            })
            .collect()
    }

    pub fn hot_records(&self) -> Vec<RecordId> {
        (0..self.hot_set)
            .map(|k| RecordId::new(ACCOUNTS, k))
            .collect()
    }

    /// Placement that co-locates the entire hot set on partition 0 (what
    /// Chiller's contention-aware partitioner produces for co-written hot
    /// records) and hashes the rest.
    pub fn chiller_placement(&self, partitions: u32) -> LookupTable<HashPlacement> {
        LookupTable::with_entries(
            (0..self.hot_set).map(|k| (RecordId::new(ACCOUNTS, k), PartitionId(0))),
            HashPlacement::new(partitions),
        )
    }
}

/// Params: `[0]` src, `[1]` dst, `[2]` amount.
pub fn transfer_proc() -> chiller_sproc::Procedure {
    ProcedureBuilder::new("transfer")
        .update(ACCOUNTS, 0, "debit", |row, st| {
            let mut r = row.clone();
            r[1] = Value::F64(r[1].as_f64() - st.param_f64(2));
            r
        })
        .update(ACCOUNTS, 1, "credit", |row, st| {
            let mut r = row.clone();
            r[1] = Value::F64(r[1].as_f64() + st.param_f64(2));
            r
        })
        .build()
        .expect("transfer procedure is well-formed")
}

pub struct TransferSource {
    cfg: TransferConfig,
    proc: usize,
}

impl TransferSource {
    pub fn new(cfg: TransferConfig, proc: usize) -> Self {
        TransferSource { cfg, proc }
    }
}

impl InputSource for TransferSource {
    fn next_input(&mut self, rng: &mut StdRng, _now: SimTime) -> TxnInput {
        let c = &self.cfg;
        let (a, b) = if rng.gen::<f64>() < c.hot_fraction && c.hot_set >= 2 {
            let a = rng.gen_range(0..c.hot_set);
            let mut b = rng.gen_range(0..c.hot_set);
            if b == a {
                b = (b + 1) % c.hot_set;
            }
            (a, b)
        } else {
            let a = rng.gen_range(c.hot_set..c.accounts);
            let mut b = rng.gen_range(c.hot_set..c.accounts);
            if b == a {
                b = c.hot_set + (b + 1 - c.hot_set) % (c.accounts - c.hot_set);
            }
            (a, b)
        };
        TxnInput {
            proc: self.proc,
            params: vec![Value::from(a), Value::from(b), Value::F64(1.0)],
        }
    }
}

/// A hot-set-shifting transfer source: from `shift_at` on, hot endpoints
/// `0..hot_set` are relabeled to `new_base..new_base + hot_set` — the
/// contention point jumps to accounts the frozen layout scattered by hash.
pub fn shifting_source(
    cfg: &TransferConfig,
    proc: usize,
    shift_at: SimTime,
    new_base: u64,
) -> crate::shift::ShiftedSource<TransferSource> {
    assert!(new_base + cfg.hot_set <= cfg.accounts);
    let hot_set = cfg.hot_set;
    crate::shift::ShiftedSource::new(
        TransferSource::new(cfg.clone(), proc),
        shift_at,
        move |input| {
            for p in input.params.iter_mut().take(2) {
                let k = p.as_i64() as u64;
                if k < hot_set {
                    *p = Value::from(new_base + k);
                }
            }
        },
    )
}

/// Build a transfer cluster whose hot set jumps to `new_base` at
/// `shift_at`, optionally with the online-adaptation loop enabled.
pub fn build_shifting_cluster(
    cfg: &TransferConfig,
    nodes: usize,
    protocol: Protocol,
    sim: SimConfig,
    shift_at: SimTime,
    new_base: u64,
    adaptive: Option<AdaptiveConfig>,
) -> Cluster {
    let mut builder = ClusterBuilder::new(TransferConfig::schema(), nodes);
    let proc = builder.register_proc(transfer_proc());
    builder
        .protocol(protocol)
        .config(sim)
        .placement(Arc::new(cfg.chiller_placement(nodes as u32)))
        .hot_records(cfg.hot_records())
        .load(cfg.initial_records());
    if let Some(a) = adaptive {
        builder.adaptive(a);
    }
    let cfg = cfg.clone();
    builder.source_per_node(move |_| Box::new(shifting_source(&cfg, proc, shift_at, new_base)));
    builder.build().expect("valid shifting transfer cluster")
}

/// Build a transfer cluster with the Chiller-style hot-set placement on
/// the deterministic simulator.
pub fn build_cluster(
    cfg: &TransferConfig,
    nodes: usize,
    protocol: Protocol,
    sim: SimConfig,
) -> Cluster {
    build_cluster_on(cfg, nodes, protocol, sim, Backend::Simulated)
}

/// Build a transfer cluster on an explicit execution backend — the same
/// schema, placement, procedures and sources either way, so simulated and
/// threaded runs are directly comparable.
pub fn build_cluster_on(
    cfg: &TransferConfig,
    nodes: usize,
    protocol: Protocol,
    sim: SimConfig,
    backend: Backend,
) -> Cluster {
    build_cluster_tuned(cfg, nodes, protocol, sim, backend, None, None)
}

/// [`build_cluster_on`] with explicit threaded-backend tuning: mailbox
/// implementation and core-pinning policy (`None` defers to the
/// `CHILLER_MAILBOX` / `CHILLER_PIN` environment knobs). The A/B matrix
/// in `bench_threaded_throughput` drives all four combinations through
/// this door; the simulated backend ignores both.
pub fn build_cluster_tuned(
    cfg: &TransferConfig,
    nodes: usize,
    protocol: Protocol,
    sim: SimConfig,
    backend: Backend,
    mailbox: Option<MailboxKind>,
    pin: Option<PinPolicy>,
) -> Cluster {
    build_cluster_scaled(cfg, nodes, protocol, sim, backend, mailbox, pin, None)
}

/// [`build_cluster_tuned`] with an explicit async worker-pool size
/// (`None` defers to `CHILLER_WORKERS` / detected parallelism). The
/// scaling sweep in `bench_async_scale` drives its partitions × workers
/// matrix through this door; the other backends ignore the knob.
#[allow(clippy::too_many_arguments)]
pub fn build_cluster_scaled(
    cfg: &TransferConfig,
    nodes: usize,
    protocol: Protocol,
    sim: SimConfig,
    backend: Backend,
    mailbox: Option<MailboxKind>,
    pin: Option<PinPolicy>,
    workers: Option<usize>,
) -> Cluster {
    build_cluster_traced(
        cfg, nodes, protocol, sim, backend, mailbox, pin, workers, None,
    )
}

/// [`build_cluster_scaled`] with an explicit lifecycle-trace mode (`None`
/// defers to the `CHILLER_TRACE` environment knob). The trace smoke suite
/// and `bench_trace_overhead` drive all modes through this door.
#[allow(clippy::too_many_arguments)]
pub fn build_cluster_traced(
    cfg: &TransferConfig,
    nodes: usize,
    protocol: Protocol,
    sim: SimConfig,
    backend: Backend,
    mailbox: Option<MailboxKind>,
    pin: Option<PinPolicy>,
    workers: Option<usize>,
    trace: Option<TraceMode>,
) -> Cluster {
    build_cluster_checked(
        cfg, nodes, protocol, sim, backend, mailbox, pin, workers, trace, None,
    )
}

/// [`build_cluster_traced`] with an explicit serializability-check mode
/// (`None` defers to the `CHILLER_CHECK` environment knob). The checker
/// parity suites and `bench_check_overhead` drive all modes through this
/// door.
#[allow(clippy::too_many_arguments)]
pub fn build_cluster_checked(
    cfg: &TransferConfig,
    nodes: usize,
    protocol: Protocol,
    sim: SimConfig,
    backend: Backend,
    mailbox: Option<MailboxKind>,
    pin: Option<PinPolicy>,
    workers: Option<usize>,
    trace: Option<TraceMode>,
    check: Option<CheckMode>,
) -> Cluster {
    let mut builder = ClusterBuilder::new(TransferConfig::schema(), nodes);
    let proc = builder.register_proc(transfer_proc());
    builder
        .protocol(protocol)
        .config(sim)
        .runtime(backend)
        .placement(Arc::new(cfg.chiller_placement(nodes as u32)))
        .hot_records(cfg.hot_records())
        .load(cfg.initial_records());
    if let Some(kind) = mailbox {
        builder.mailbox(kind);
    }
    if let Some(policy) = pin {
        builder.pin_threads(policy);
    }
    if let Some(n) = workers {
        builder.workers(n);
    }
    if let Some(mode) = trace {
        builder.trace(mode);
    }
    if let Some(mode) = check {
        builder.check(mode);
    }
    let cfg = cfg.clone();
    builder.source_per_node(move |_| Box::new(TransferSource::new(cfg.clone(), proc)));
    builder.build().expect("valid transfer cluster")
}

/// Assert the post-quiescence serializability contract on a transfer
/// cluster: balance conservation, no leaked locks, no zombie
/// transactions, zero replica divergence. Shared by the parity-style
/// suites and the threaded stress/bench paths so the contract lives in
/// one place. The cluster must already be quiesced.
pub fn assert_serializability_invariants(cluster: &Cluster, cfg: &TransferConfig, label: &str) {
    let total = total_balance(cluster);
    let expect = cfg.accounts as f64 * INITIAL_BALANCE;
    assert!(
        (total - expect).abs() < 1e-6,
        "{label}: balance {total} != {expect} — conservation violated"
    );
    for engine in cluster.engines() {
        assert!(
            engine.store().all_locks_free(),
            "{label}: leaked locks on node {}",
            engine.store().partition
        );
        assert_eq!(engine.open_txns(), 0, "{label}: zombie transactions");
    }
    assert_eq!(
        cluster.replica_divergence(),
        0,
        "{label}: replicas diverged"
    );
}

/// Sum of all account balances across primaries (conservation check).
pub fn total_balance(cluster: &Cluster) -> f64 {
    cluster
        .engines()
        .iter()
        .flat_map(|e| e.store().table(ACCOUNTS).iter())
        .map(|(_, row)| row[1].as_f64())
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use chiller::cluster::RunSpec;
    use chiller_common::rng::seeded;

    #[test]
    fn conservation_under_all_protocols() {
        for protocol in [Protocol::Chiller, Protocol::TwoPhaseLocking, Protocol::Occ] {
            let cfg = TransferConfig::default();
            let mut cluster = build_cluster(&cfg, 3, protocol, SimConfig::default());
            let report = cluster.run(RunSpec::millis(1, 5));
            assert!(report.total_commits() > 0, "{protocol}");
            cluster.quiesce();
            let total = total_balance(&cluster);
            let expect = cfg.accounts as f64 * INITIAL_BALANCE;
            assert!((total - expect).abs() < 1e-6, "{protocol}: {total}");
        }
    }

    #[test]
    fn source_respects_hot_fraction() {
        let cfg = TransferConfig {
            hot_fraction: 0.5,
            ..Default::default()
        };
        let mut src = TransferSource::new(cfg.clone(), 0);
        let mut rng = seeded(1);
        let mut hot = 0;
        let n = 20_000;
        for _ in 0..n {
            let input = src.next_input(&mut rng, SimTime::ZERO);
            if (input.params[0].as_i64() as u64) < cfg.hot_set {
                hot += 1;
            }
        }
        let frac = hot as f64 / n as f64;
        assert!((frac - 0.5).abs() < 0.02, "hot fraction {frac}");
    }

    #[test]
    fn endpoints_always_distinct() {
        let mut src = TransferSource::new(TransferConfig::default(), 0);
        let mut rng = seeded(2);
        for _ in 0..10_000 {
            let input = src.next_input(&mut rng, SimTime::ZERO);
            assert_ne!(input.params[0].as_i64(), input.params[1].as_i64());
        }
    }
}
