//! # chiller-workload
//!
//! The workloads of the paper's evaluation (§7), expressed against the
//! `chiller` public API:
//!
//! * [`tpcc`] — the full TPC-C mix (NewOrder, Payment, OrderStatus,
//!   Delivery, StockLevel) with warehouse partitioning: Figures 9 and 10.
//!   Scaled-down table cardinalities and the documented simplifications are
//!   listed in the module docs.
//! * [`instacart`] — a synthetic grocery-order generator calibrated to the
//!   published marginals of the Instacart 2017 dataset (top product in 15%
//!   of orders, second in 8%, baskets of ~10 items): the partitioning
//!   comparison of Figures 7 and 8 and the lookup-table-size study.
//! * [`flight`] — the paper's Figure 4 flight-booking procedure as a
//!   runnable workload (used by the `flight_booking` example).
//! * [`transfer`] — a minimal money-transfer microworkload with a
//!   controllable hot set (used by the quickstart and ablation benches).
//! * [`ycsb`] — a YCSB-style key-value microworkload with Zipfian skew,
//!   for controlled studies of the engines.
//! * [`shift`] — hotspot-*shifting* wrappers over any source: the drifting
//!   workloads that motivate the online-adaptation subsystem.
//! * [`smallbank`] — the classic write-heavy SmallBank banking mix with a
//!   countable conservation invariant: the certification workload for the
//!   black-box serializability checker (`CHILLER_CHECK`).

pub mod flight;
pub mod instacart;
pub mod shift;
pub mod smallbank;
pub mod tpcc;
pub mod transfer;
pub mod ycsb;

#[cfg(test)]
mod send_bounds {
    //! Every input source must be `Send`: the threaded backend moves each
    //! engine (and its boxed source) onto its own OS thread. `InputSource`
    //! carries the bound in its supertrait; these assertions pin it per
    //! concrete type so a stray `Rc`/raw pointer in a source is caught at
    //! compile time, next to the workload that introduced it.

    fn assert_send<T: Send>() {}

    #[test]
    fn all_sources_are_send() {
        assert_send::<crate::transfer::TransferSource>();
        assert_send::<crate::ycsb::YcsbSource>();
        assert_send::<crate::tpcc::source::TpccSource>();
        assert_send::<crate::instacart::InstacartSource>();
        assert_send::<crate::flight::FlightSource>();
        assert_send::<crate::smallbank::SmallBankSource>();
        assert_send::<crate::shift::ShiftedSource<crate::transfer::TransferSource>>();
        assert_send::<Box<dyn chiller_cc::input::InputSource>>();
    }
}
