//! Instacart-like grocery workload (paper §7.2).
//!
//! The paper evaluates its partitioning on the Instacart 2017 dataset:
//! 3M grocery orders over ~50k products, baskets of ~10 items, with heavy
//! popularity skew ("15 and 8 percent of transactions contain banana and
//! strawberries"). The dataset itself is not redistributable, so this module
//! synthesizes an equivalent workload calibrated to those published
//! marginals (see DESIGN.md):
//!
//! * product popularity is calibrated *directly* to the published order
//!   marginals: the per-order inclusion probability of rank `i` decays as
//!   `0.15 / (i+1)^s` with `s = log2(15/8)` (so rank 0 lands in ≈15% of
//!   orders and rank 1 in ≈8%), converted to per-draw probabilities for a
//!   mean basket of 10, with the leftover mass spread uniformly over the
//!   tail — pure Zipf cannot match both the head ratio and the absolute
//!   inclusion rates (verified by a test below);
//! * basket size is Poisson-like around 10 (clamped to `1..=MAX_BASKET`);
//! * co-purchase structure comes from a category mixture: the head products
//!   are global staples (anyone buys bananas), while tail picks come from
//!   the 2 categories each order shops in — giving Schism real clusters to
//!   find, as in the actual dataset ("items from different categories may
//!   be purchased together" but most of a basket is category-local);
//! * transactions are TPC-C-NewOrder-shaped, exactly as in §7.2.1: read
//!   each item's stock, decrement it, and insert one order record.
//!
//! The same generator produces the *trace* used to drive the partitioners
//! (Figures 7/8, lookup-table size) and the *live input* for the cluster.

use chiller::prelude::*;
use chiller_common::rng::{derive_seed, seeded};
use chiller_partition::stats::{TxnTrace, WorkloadTrace};
use rand::rngs::StdRng;
use rand::Rng;
use std::sync::Arc;

pub const STOCK: TableId = TableId(21);
pub const ORDERS: TableId = TableId(22);

/// Head-decay exponent: `log2(0.15 / 0.08)`, from the published marginals.
pub const CALIBRATED_THETA: f64 = 0.9069;
/// Per-order inclusion probability of the most popular product (§7.2.1).
pub const TOP_INCLUSION: f64 = 0.15;
pub const MAX_BASKET: usize = 20;
pub const MEAN_BASKET: f64 = 10.0;

/// Workload sizing.
#[derive(Debug, Clone)]
pub struct InstacartConfig {
    pub products: usize,
    pub theta: f64,
    /// Products `0..head_size` are global staples following the calibrated
    /// popularity head; the rest are organized in categories.
    pub head_size: usize,
    /// Products per category (tail products only).
    pub category_size: usize,
    /// Categories each order shops in.
    pub cats_per_order: usize,
    pub seed: u64,
}

impl Default for InstacartConfig {
    fn default() -> Self {
        InstacartConfig {
            // The real dataset's scale: ~50k products.
            products: 50_000,
            theta: CALIBRATED_THETA,
            head_size: 100,
            category_size: 200,
            cats_per_order: 3,
            seed: 0x1257AC,
        }
    }
}

impl InstacartConfig {
    /// Number of tail categories.
    pub fn num_categories(&self) -> usize {
        (self.products - self.head_size) / self.category_size
    }
}

impl InstacartConfig {
    pub fn schema() -> Schema {
        let mut s = Schema::new();
        s.add(TableDef::new(STOCK, "stock", vec!["product", "quantity"]));
        s.add(TableDef::new(
            ORDERS,
            "orders",
            vec!["order_id", "num_items"],
        ));
        s
    }

    /// Initial records: one stock row per product.
    pub fn initial_records(&self) -> Vec<(RecordId, Row)> {
        (0..self.products as u64)
            .map(|p| {
                (
                    RecordId::new(STOCK, p),
                    vec![Value::from(p), Value::I64(1_000_000)],
                )
            })
            .collect()
    }
}

/// Per-product popularity calibrated to the paper's marginals.
///
/// Head: inclusion probability `0.15/(i+1)^theta` converted to a per-draw
/// probability via `q = 1 - (1-p)^(1/mean_basket)`; tail: the remaining
/// probability mass uniformly.
pub fn calibrated_pmf(products: usize, theta: f64) -> Vec<f64> {
    assert!(products >= 2);
    let mut q: Vec<f64> = (0..products)
        .map(|i| {
            let inclusion = TOP_INCLUSION / ((i + 1) as f64).powf(theta);
            1.0 - (1.0 - inclusion).powf(1.0 / MEAN_BASKET)
        })
        .collect();
    let head_mass: f64 = q.iter().sum();
    if head_mass < 1.0 {
        let uniform = (1.0 - head_mass) / products as f64;
        for v in &mut q {
            *v += uniform;
        }
    } else {
        for v in &mut q {
            *v /= head_mass;
        }
    }
    q
}

/// Shared basket sampler: calibrated global head + category-local tail.
pub struct BasketSampler {
    /// Cumulative per-draw masses of the head products (unnormalized; the
    /// last entry is the total head mass of one draw).
    head_cdf: Vec<f64>,
    head_mass: f64,
    head_size: usize,
    category_size: usize,
    num_categories: usize,
    cats_per_order: usize,
}

impl BasketSampler {
    pub fn new(cfg: &InstacartConfig) -> Self {
        assert!(cfg.head_size >= 2 && cfg.head_size < cfg.products);
        assert!(cfg.num_categories() >= 2);
        let pmf = calibrated_pmf(cfg.products, cfg.theta);
        let mut acc = 0.0;
        let head_cdf: Vec<f64> = pmf[..cfg.head_size]
            .iter()
            .map(|p| {
                acc += p;
                acc
            })
            .collect();
        BasketSampler {
            head_mass: acc,
            head_cdf,
            head_size: cfg.head_size,
            category_size: cfg.category_size,
            num_categories: cfg.num_categories(),
            cats_per_order: cfg.cats_per_order,
        }
    }

    fn sample_head(&self, rng: &mut StdRng) -> u64 {
        let u: f64 = rng.gen::<f64>() * self.head_mass;
        self.head_cdf
            .partition_point(|&c| c < u)
            .min(self.head_size - 1) as u64
    }

    /// Sample one basket: distinct products, size ~ Poisson(10) clamped.
    /// Each draw is a staple (head) with the calibrated probability,
    /// otherwise an item from one of the order's categories.
    pub fn basket(&self, rng: &mut StdRng) -> Vec<u64> {
        // Knuth Poisson sampling is fine at λ=10.
        let mut k = 0usize;
        let l = (-MEAN_BASKET).exp();
        let mut p = 1.0;
        loop {
            p *= rng.gen::<f64>();
            if p <= l {
                break;
            }
            k += 1;
        }
        let size = k.clamp(1, MAX_BASKET);
        // The categories this order shops in.
        let mut cats: Vec<usize> = Vec::with_capacity(self.cats_per_order);
        while cats.len() < self.cats_per_order {
            let c = rng.gen_range(0..self.num_categories);
            if !cats.contains(&c) {
                cats.push(c);
            }
        }
        let mut items: Vec<u64> = Vec::with_capacity(size);
        while items.len() < size {
            let candidate = if rng.gen::<f64>() < self.head_mass {
                self.sample_head(rng)
            } else {
                let cat = cats[rng.gen_range(0..cats.len())];
                (self.head_size + cat * self.category_size + rng.gen_range(0..self.category_size))
                    as u64
            };
            if !items.contains(&candidate) {
                items.push(candidate);
            }
        }
        items
    }
}

/// One NewOrder-style procedure per basket size: read+decrement each
/// product's stock, insert the order record.
///
/// Params: `[0]` order key, then one product key per basket slot.
pub fn order_proc(basket: usize) -> chiller_sproc::Procedure {
    let mut b = ProcedureBuilder::new("GroceryOrder");
    for slot in 0..basket {
        b = b.update(STOCK, 1 + slot, "decrement stock", |row, _| {
            let mut r = row.clone();
            r[1] = Value::I64(r[1].as_i64() - 1);
            r
        });
    }
    b = b.insert(ORDERS, 0, &[], "insert order", move |st| {
        vec![Value::from(st.param_u64(0)), Value::from(basket as u64)]
    });
    b.build().expect("grocery order procedure is well-formed")
}

/// Registered procedure ids per basket size (index `size - 1`).
#[derive(Debug, Clone)]
pub struct InstacartProcs {
    pub order: Vec<usize>,
}

pub fn register_procs(
    mut register: impl FnMut(chiller_sproc::Procedure) -> usize,
) -> InstacartProcs {
    InstacartProcs {
        order: (1..=MAX_BASKET).map(|n| register(order_proc(n))).collect(),
    }
}

/// Generate the offline trace used to drive the partitioners (the paper's
/// sampled statistics): `n` orders as write-sets over stock records.
pub fn trace(cfg: &InstacartConfig, n: usize, window_ns: u64) -> WorkloadTrace {
    let sampler = BasketSampler::new(cfg);
    let mut rng = seeded(derive_seed(cfg.seed, 0x7124CE));
    let txns = (0..n)
        .map(|_| {
            let writes = sampler
                .basket(&mut rng)
                .into_iter()
                .map(|p| RecordId::new(STOCK, p))
                .collect();
            TxnTrace::new(vec![], writes)
        })
        .collect();
    WorkloadTrace::new(txns, window_ns)
}

/// Live input source for an engine node.
pub struct InstacartSource {
    sampler: BasketSampler,
    procs: InstacartProcs,
    node: u64,
    seq: u64,
}

impl InstacartSource {
    pub fn new(cfg: &InstacartConfig, procs: InstacartProcs, node: u64) -> Self {
        InstacartSource {
            sampler: BasketSampler::new(cfg),
            procs,
            node,
            seq: 0,
        }
    }
}

impl InputSource for InstacartSource {
    fn next_input(&mut self, rng: &mut StdRng, _now: SimTime) -> TxnInput {
        let basket = self.sampler.basket(rng);
        self.seq += 1;
        let order_key = (self.node << 40) | self.seq;
        let mut params = vec![Value::from(order_key)];
        params.extend(basket.iter().map(|&p| Value::from(p)));
        TxnInput {
            proc: self.procs.order[basket.len() - 1],
            params,
        }
    }
}

/// A trending-products source: from `shift_at` on, product `p` rotates to
/// `(p + rotate) % products` — yesterday's staples go quiet and a fresh
/// set of products takes over the popularity head (order keys untouched).
pub fn shifting_source(
    cfg: &InstacartConfig,
    procs: InstacartProcs,
    node: u64,
    shift_at: SimTime,
    rotate: u64,
) -> crate::shift::ShiftedSource<InstacartSource> {
    let products = cfg.products as u64;
    crate::shift::ShiftedSource::new(
        InstacartSource::new(cfg, procs, node),
        shift_at,
        move |input| {
            for p in input.params.iter_mut().skip(1) {
                *p = crate::shift::rotate_key(p, rotate, products);
            }
        },
    )
}

/// Placement wrapper: order records (unique, insert-only) live on the
/// inserting coordinator's partition (their key carries the node id in the
/// high bits), while stock records follow the partitioning scheme under
/// comparison. Mirrors TPC-C's home-warehouse order inserts.
pub struct InstacartPlacement<P> {
    pub stock: P,
    pub partitions: u32,
}

impl<P: Placement> Placement for InstacartPlacement<P> {
    fn partition_of(&self, record: RecordId) -> PartitionId {
        if record.table == ORDERS {
            PartitionId(((record.key >> 40) % self.partitions as u64) as u32)
        } else {
            self.stock.partition_of(record)
        }
    }

    fn lookup_entries(&self) -> usize {
        self.stock.lookup_entries()
    }
}

/// Build an Instacart cluster over an arbitrary placement (hash / Schism /
/// Chiller — the Figure 7 comparison).
pub fn build_cluster(
    cfg: &InstacartConfig,
    nodes: usize,
    stock_placement: Arc<dyn Placement + Send + Sync>,
    hot: Vec<RecordId>,
    protocol: Protocol,
    sim: SimConfig,
) -> Cluster {
    let mut builder = ClusterBuilder::new(InstacartConfig::schema(), nodes);
    let procs = register_procs(|p| builder.register_proc(p));
    let placement = Arc::new(InstacartPlacement {
        stock: stock_placement,
        partitions: nodes as u32,
    });
    builder
        .protocol(protocol)
        .config(sim)
        .placement(placement)
        .hot_records(hot)
        .load(cfg.initial_records());
    let cfg = cfg.clone();
    builder.source_per_node(move |node| {
        Box::new(InstacartSource::new(&cfg, procs.clone(), node.0 as u64))
    });
    builder.build().expect("valid instacart cluster")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn popularity_marginals_match_paper() {
        // Top product in ~15% of orders, second in ~8% (§7.2.1).
        let cfg = InstacartConfig::default();
        let sampler = BasketSampler::new(&cfg);
        let mut rng = seeded(42);
        let n = 30_000;
        let mut top = 0;
        let mut second = 0;
        for _ in 0..n {
            let basket = sampler.basket(&mut rng);
            if basket.contains(&0) {
                top += 1;
            }
            if basket.contains(&1) {
                second += 1;
            }
        }
        let f0 = top as f64 / n as f64;
        let f1 = second as f64 / n as f64;
        assert!((f0 - 0.15).abs() < 0.03, "top product in {f0} of orders");
        assert!(
            (f1 - 0.08).abs() < 0.025,
            "second product in {f1} of orders"
        );
    }

    #[test]
    fn basket_sizes_average_ten() {
        let cfg = InstacartConfig::default();
        let sampler = BasketSampler::new(&cfg);
        let mut rng = seeded(7);
        let n = 20_000;
        let total: usize = (0..n).map(|_| sampler.basket(&mut rng).len()).sum();
        let mean = total as f64 / n as f64;
        assert!((mean - MEAN_BASKET).abs() < 0.5, "mean basket {mean}");
    }

    #[test]
    fn baskets_have_distinct_items() {
        let cfg = InstacartConfig::default();
        let sampler = BasketSampler::new(&cfg);
        let mut rng = seeded(13);
        for _ in 0..1_000 {
            let b = sampler.basket(&mut rng);
            let mut dedup = b.clone();
            dedup.sort();
            dedup.dedup();
            assert_eq!(dedup.len(), b.len());
        }
    }

    #[test]
    fn trace_matches_generator_statistics() {
        let cfg = InstacartConfig::default();
        let t = trace(&cfg, 5_000, 1_000_000);
        assert_eq!(t.txns.len(), 5_000);
        let mean: f64 = t.txns.iter().map(|x| x.writes.len()).sum::<usize>() as f64 / 5_000.0;
        assert!((mean - MEAN_BASKET).abs() < 0.5);
        // Skew visible in the trace.
        let top_count = t
            .txns
            .iter()
            .filter(|x| x.writes.contains(&RecordId::new(STOCK, 0)))
            .count();
        assert!(top_count as f64 / 5_000.0 > 0.10);
    }

    #[test]
    fn order_proc_shapes() {
        for n in [1, 10, MAX_BASKET] {
            let p = order_proc(n);
            assert_eq!(p.num_ops(), n + 1);
        }
    }
}
