//! Static analysis: the dependency graph (§3.2, Figure 4 step "Static
//! analysis").
//!
//! Built once when a procedure is registered. Captures, per operation, its
//! primary-key parents/children (pk-deps — the edges that constrain lock
//! reordering) and its value parents (v-deps — execution ordering only).
//! Validates that the procedure is well-formed: references point to earlier
//! output-producing ops and the combined graph is acyclic (it is by
//! construction when references point backwards, which validation enforces).

use crate::op::{Guard, Op};
use chiller_common::error::{ChillerError, Result};
use chiller_common::ids::OpId;

/// Precomputed dependency structure of a procedure.
#[derive(Debug, Clone, Default)]
pub struct DepGraph {
    /// `pk_children[i]` = ops whose *key* depends on op i's output.
    pub pk_children: Vec<Vec<OpId>>,
    /// `pk_parents[i]` = ops whose output op i's *key* needs.
    pub pk_parents: Vec<Vec<OpId>>,
    /// `v_parents[i]` = ops whose output op i's *values* need.
    pub v_parents: Vec<Vec<OpId>>,
    /// A topological order of ops respecting pk-deps ∪ v-deps. Because
    /// validation requires references to point backwards, the natural order
    /// `0..n` is always topological; stored explicitly for clarity.
    pub topo: Vec<OpId>,
}

impl DepGraph {
    /// Build and validate the graph for `ops` (+ guard references).
    pub fn build(name: &str, ops: &[Op], guards: &[Guard]) -> Result<DepGraph> {
        let n = ops.len();
        let mut pk_children = vec![Vec::new(); n];
        let mut pk_parents = vec![Vec::new(); n];
        let mut v_parents = vec![Vec::new(); n];

        let check_ref = |referrer: usize, dep: OpId, what: &str| -> Result<()> {
            if dep.idx() >= n {
                return Err(ChillerError::InvalidProcedure(format!(
                    "{name}: op {referrer} {what}-references nonexistent op {dep}"
                )));
            }
            if dep.idx() >= referrer {
                return Err(ChillerError::InvalidProcedure(format!(
                    "{name}: op {referrer} {what}-references op {dep} that is not earlier \
                     (forward references would make the graph cyclic)"
                )));
            }
            if !ops[dep.idx()].kind.produces_output() {
                return Err(ChillerError::InvalidProcedure(format!(
                    "{name}: op {referrer} {what}-references op {dep}, which produces no output"
                )));
            }
            Ok(())
        };

        for (i, op) in ops.iter().enumerate() {
            if op.id != OpId(i as u16) {
                return Err(ChillerError::InvalidProcedure(format!(
                    "{name}: op at index {i} has id {}",
                    op.id
                )));
            }
            for &dep in op.key.pk_deps() {
                check_ref(i, dep, "pk")?;
                pk_children[dep.idx()].push(op.id);
                pk_parents[i].push(dep);
            }
            for &dep in &op.value_deps {
                check_ref(i, dep, "value")?;
                v_parents[i].push(dep);
            }
        }

        for (gi, g) in guards.iter().enumerate() {
            for &dep in &g.deps {
                if dep.idx() >= n || !ops[dep.idx()].kind.produces_output() {
                    return Err(ChillerError::InvalidProcedure(format!(
                        "{name}: guard {gi} ({}) references invalid op {dep}",
                        g.label
                    )));
                }
            }
        }

        Ok(DepGraph {
            pk_children,
            pk_parents,
            v_parents,
            topo: (0..n as u16).map(OpId).collect(),
        })
    }

    /// Transitive pk-descendants of `op` (not including `op` itself).
    pub fn pk_descendants(&self, op: OpId) -> Vec<OpId> {
        let mut out = Vec::new();
        let mut stack = vec![op];
        let mut seen = vec![false; self.pk_children.len()];
        while let Some(cur) = stack.pop() {
            for &c in &self.pk_children[cur.idx()] {
                if !seen[c.idx()] {
                    seen[c.idx()] = true;
                    out.push(c);
                    stack.push(c);
                }
            }
        }
        out.sort();
        out
    }

    /// Whether op `a` is a pk-ancestor of op `b`.
    pub fn is_pk_ancestor(&self, a: OpId, b: OpId) -> bool {
        self.pk_descendants(a).contains(&b)
    }

    /// Number of ops.
    pub fn len(&self) -> usize {
        self.pk_children.len()
    }

    pub fn is_empty(&self) -> bool {
        self.pk_children.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::{KeyExpr, OpKind};
    use chiller_common::ids::TableId;
    use std::sync::Arc;

    fn read_op(id: u16, key: KeyExpr) -> Op {
        Op {
            id: OpId(id),
            table: TableId(1),
            key,
            kind: OpKind::Read { for_update: false },
            value_deps: vec![],
            home_hint: None,
            label: "read",
        }
    }

    fn computed_key(deps: Vec<OpId>) -> KeyExpr {
        KeyExpr::Computed {
            deps,
            f: Arc::new(|_| 0),
        }
    }

    #[test]
    fn builds_pk_edges() {
        let ops = vec![
            read_op(0, KeyExpr::Param(0)),
            read_op(1, computed_key(vec![OpId(0)])),
            read_op(2, computed_key(vec![OpId(0), OpId(1)])),
        ];
        let g = DepGraph::build("t", &ops, &[]).unwrap();
        assert_eq!(g.pk_children[0], vec![OpId(1), OpId(2)]);
        assert_eq!(g.pk_parents[2], vec![OpId(0), OpId(1)]);
        assert_eq!(g.pk_descendants(OpId(0)), vec![OpId(1), OpId(2)]);
        assert!(g.is_pk_ancestor(OpId(0), OpId(2)));
        assert!(!g.is_pk_ancestor(OpId(1), OpId(0)));
    }

    #[test]
    fn v_deps_tracked_separately() {
        let mut op1 = read_op(1, KeyExpr::Param(1));
        op1.value_deps = vec![OpId(0)];
        let ops = vec![read_op(0, KeyExpr::Param(0)), op1];
        let g = DepGraph::build("t", &ops, &[]).unwrap();
        assert!(g.pk_children[0].is_empty(), "v-dep must not be a pk edge");
        assert_eq!(g.v_parents[1], vec![OpId(0)]);
    }

    #[test]
    fn rejects_forward_reference() {
        let ops = vec![
            read_op(0, computed_key(vec![OpId(1)])),
            read_op(1, KeyExpr::Param(0)),
        ];
        let err = DepGraph::build("t", &ops, &[]).unwrap_err();
        assert!(matches!(err, ChillerError::InvalidProcedure(_)));
    }

    #[test]
    fn rejects_self_reference() {
        let ops = vec![read_op(0, computed_key(vec![OpId(0)]))];
        assert!(DepGraph::build("t", &ops, &[]).is_err());
    }

    #[test]
    fn rejects_dep_on_non_output_op() {
        let insert = Op {
            id: OpId(0),
            table: TableId(1),
            key: KeyExpr::Param(0),
            kind: OpKind::Insert(Arc::new(|_| vec![])),
            value_deps: vec![],
            home_hint: None,
            label: "ins",
        };
        let ops = vec![insert, read_op(1, computed_key(vec![OpId(0)]))];
        assert!(DepGraph::build("t", &ops, &[]).is_err());
    }

    #[test]
    fn rejects_misnumbered_ids() {
        let ops = vec![read_op(5, KeyExpr::Param(0))];
        assert!(DepGraph::build("t", &ops, &[]).is_err());
    }

    #[test]
    fn guard_refs_validated() {
        let ops = vec![read_op(0, KeyExpr::Param(0))];
        let bad_guard = Guard {
            deps: vec![OpId(3)],
            check: Arc::new(|_| Ok(())),
            label: "g",
        };
        assert!(DepGraph::build("t", &ops, &[bad_guard]).is_err());
        let ok_guard = Guard {
            deps: vec![OpId(0)],
            check: Arc::new(|_| Ok(())),
            label: "g",
        };
        assert!(DepGraph::build("t", &ops, &[ok_guard]).is_ok());
    }
}
