//! The run-time region decision (§3.3 steps 1–2).
//!
//! Given a transaction instance (procedure + resolved parameters), the
//! partition of every operation's record (from the placement/lookup table)
//! and per-operation hotness (from the hot-record lookup table), decide:
//!
//! 1. whether to run as a **two-region** transaction at all,
//! 2. which partition is the **inner host**, and
//! 3. which operations execute in the inner vs the outer region.
//!
//! A hot record `h` is an inner-region candidate only if (a) no op's key
//! depends on `h`, or (b) every pk-child of `h` is on the same partition as
//! `h` (§3.3 step 1). The same legality condition is applied transitively to
//! every op moved into the inner region: an op whose pk-child must be locked
//! elsewhere cannot be postponed, otherwise that child's lock could not be
//! acquired before the inner region commits — and the inner host would no
//! longer hold the sole commit decision.

use crate::op::Procedure;
use chiller_common::ids::{OpId, PartitionId};
use std::collections::HashMap;

/// Where a guard predicate is evaluated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GuardSite {
    /// All inputs available in the outer region: evaluated by the
    /// coordinator before the inner RPC is sent.
    Outer,
    /// Depends on at least one inner output: evaluated by the inner host,
    /// which folds it into its unilateral commit/abort decision.
    Inner,
}

/// Result of the region decision for one transaction instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegionSplit {
    /// `None` ⇒ run as a normal (single-region, 2PC) transaction.
    pub inner_host: Option<PartitionId>,
    /// Ops executed by the inner host, in procedure order.
    pub inner_ops: Vec<OpId>,
    /// Ops executed by the coordinator in the outer region, in order.
    pub outer_ops: Vec<OpId>,
    /// Evaluation site of each guard (parallel to `procedure.guards`).
    pub guard_sites: Vec<GuardSite>,
}

impl RegionSplit {
    pub fn is_two_region(&self) -> bool {
        self.inner_host.is_some()
    }

    /// A split that runs every op in the outer region (normal execution).
    pub fn all_outer(proc_: &Procedure) -> RegionSplit {
        RegionSplit {
            inner_host: None,
            inner_ops: Vec::new(),
            outer_ops: (0..proc_.ops.len() as u16).map(OpId).collect(),
            guard_sites: vec![GuardSite::Outer; proc_.guards.len()],
        }
    }
}

/// Decide the regions for one transaction instance.
///
/// * `op_partition[i]` — partition of op `i`'s record, or `None` when the
///   key is computed and no home hint resolves it at decision time.
/// * `op_hot[i]` — whether op `i`'s record is in the hot lookup table.
pub fn decide_regions(
    proc_: &Procedure,
    op_partition: &[Option<PartitionId>],
    op_hot: &[bool],
) -> RegionSplit {
    let n = proc_.ops.len();
    debug_assert_eq!(op_partition.len(), n);
    debug_assert_eq!(op_hot.len(), n);

    if !op_hot.iter().any(|&h| h) {
        return RegionSplit::all_outer(proc_);
    }

    // legality[i] = true iff op i *and all its pk-descendants* live on
    // op i's own partition. Computed in reverse op order: validation
    // guarantees pk-children have higher indices than their parents.
    let mut self_consistent = vec![false; n];
    for i in (0..n).rev() {
        let Some(p) = op_partition[i] else {
            continue; // unknown location can never be moved inner
        };
        self_consistent[i] = proc_.graph.pk_children[i]
            .iter()
            .all(|c| op_partition[c.idx()] == Some(p) && self_consistent[c.idx()]);
    }

    // Step 1: candidate hot records, grouped by their partition.
    let mut hot_per_partition: HashMap<PartitionId, usize> = HashMap::new();
    for i in 0..n {
        if op_hot[i] && self_consistent[i] {
            let p = op_partition[i].expect("self_consistent implies known partition");
            *hot_per_partition.entry(p).or_insert(0) += 1;
        }
    }
    if hot_per_partition.is_empty() {
        // Hot records exist but none is movable: run normally.
        return RegionSplit::all_outer(proc_);
    }

    // Step 2: inner host = candidate partition with the most hot records
    // (§3.3); ties broken by lowest partition id for determinism.
    let inner_host = *hot_per_partition
        .iter()
        .max_by_key(|(p, count)| (**count, std::cmp::Reverse(p.0)))
        .map(|(p, _)| p)
        .expect("non-empty");

    // Inner ops: every op on the inner host whose pk-descendant closure
    // stays on the inner host (Figure 5c: r-vertices in the t-vertex's
    // partition run in the inner region).
    let mut inner_ops = Vec::new();
    let mut outer_ops = Vec::new();
    let mut is_inner = vec![false; n];
    for i in 0..n {
        if op_partition[i] == Some(inner_host) && self_consistent[i] {
            inner_ops.push(OpId(i as u16));
            is_inner[i] = true;
        } else {
            outer_ops.push(OpId(i as u16));
        }
    }

    let guard_sites = proc_
        .guards
        .iter()
        .map(|g| {
            if g.deps.iter().any(|d| is_inner[d.idx()]) {
                GuardSite::Inner
            } else {
                GuardSite::Outer
            }
        })
        .collect();

    RegionSplit {
        inner_host: Some(inner_host),
        inner_ops,
        outer_ops,
        guard_sites,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ProcedureBuilder;
    use chiller_common::ids::TableId;

    /// Paper t3 (Figure 2a): read/write r5, r4, r1 — r4 and r1 hot,
    /// co-located on one partition.
    fn t3() -> Procedure {
        ProcedureBuilder::new("t3")
            .update(TableId(1), 0, "r5", |row, _| row.clone())
            .update(TableId(1), 1, "r4", |row, _| row.clone())
            .update(TableId(1), 2, "r1", |row, _| row.clone())
            .build()
            .unwrap()
    }

    fn p(id: u32) -> Option<PartitionId> {
        Some(PartitionId(id))
    }

    #[test]
    fn all_cold_runs_normally() {
        let pr = t3();
        let split = decide_regions(&pr, &[p(0), p(1), p(1)], &[false, false, false]);
        assert!(!split.is_two_region());
        assert_eq!(split.outer_ops.len(), 3);
    }

    #[test]
    fn colocated_hot_records_form_inner_region() {
        let pr = t3();
        // r5 on partition 0 (cold); r4, r1 hot on partition 2.
        let split = decide_regions(&pr, &[p(0), p(2), p(2)], &[false, true, true]);
        assert_eq!(split.inner_host, Some(PartitionId(2)));
        assert_eq!(split.inner_ops, vec![OpId(1), OpId(2)]);
        assert_eq!(split.outer_ops, vec![OpId(0)]);
    }

    #[test]
    fn host_chosen_by_most_hot_records() {
        let pr = t3();
        // One hot record on partition 0, two hot... here: ops 1,2 hot on
        // partition 2, op 0 hot on partition 0 → host must be partition 2.
        let split = decide_regions(&pr, &[p(0), p(2), p(2)], &[true, true, true]);
        assert_eq!(split.inner_host, Some(PartitionId(2)));
        // The hot op on partition 0 stays outer.
        assert_eq!(split.outer_ops, vec![OpId(0)]);
    }

    #[test]
    fn tie_breaks_to_lowest_partition() {
        let pr = t3();
        let split = decide_regions(&pr, &[p(3), p(1), p(0)], &[false, true, true]);
        assert_eq!(split.inner_host, Some(PartitionId(0)));
    }

    #[test]
    fn scattered_hot_cold_op_on_host_joins_inner() {
        let pr = t3();
        // Cold r5 shares partition 2 with hot r1: it rides along inner.
        let split = decide_regions(&pr, &[p(2), p(0), p(2)], &[false, false, true]);
        assert_eq!(split.inner_host, Some(PartitionId(2)));
        assert_eq!(split.inner_ops, vec![OpId(0), OpId(2)]);
        assert_eq!(split.outer_ops, vec![OpId(1)]);
    }

    /// Figure 4's constraint: a hot record whose pk-child lives on a
    /// different partition cannot move to the inner region.
    #[test]
    fn pk_child_on_other_partition_blocks_inner() {
        let pr = ProcedureBuilder::new("flightish")
            .read_for_update(TableId(1), 0, "flight")
            .insert_with_key_from(
                TableId(2),
                &[OpId(0)],
                "seat",
                |st| st.output_req(OpId(0))[0].as_i64() as u64,
                |_| vec![],
            )
            .build()
            .unwrap();
        // flight hot on partition 1; insert lands on partition 0.
        let split = decide_regions(&pr, &[p(1), p(0)], &[true, false]);
        assert!(!split.is_two_region(), "must fall back to normal execution");

        // Same procedure, child co-located: inner region allowed and the
        // dependent insert rides along.
        let split = decide_regions(&pr, &[p(1), p(1)], &[true, false]);
        assert_eq!(split.inner_host, Some(PartitionId(1)));
        assert_eq!(split.inner_ops, vec![OpId(0), OpId(1)]);
    }

    #[test]
    fn pk_child_with_unknown_location_blocks_inner() {
        let pr = ProcedureBuilder::new("unknown_child")
            .read_for_update(TableId(1), 0, "parent")
            .insert_with_key_from(
                TableId(2),
                &[OpId(0)],
                "child",
                |st| st.output_req(OpId(0))[0].as_i64() as u64,
                |_| vec![],
            )
            .build()
            .unwrap();
        let split = decide_regions(&pr, &[p(1), None], &[true, false]);
        assert!(!split.is_two_region());
    }

    #[test]
    fn guard_site_follows_deps() {
        let pr = ProcedureBuilder::new("guarded")
            .read(TableId(1), 0, "cold")
            .read_for_update(TableId(1), 1, "hot")
            .guard(&[OpId(0)], "outer_guard", |_| Ok(()))
            .guard(&[OpId(0), OpId(1)], "mixed_guard", |_| Ok(()))
            .build()
            .unwrap();
        let split = decide_regions(&pr, &[p(0), p(1)], &[false, true]);
        assert_eq!(split.guard_sites, vec![GuardSite::Outer, GuardSite::Inner]);
    }

    #[test]
    fn transitive_pk_chain_must_stay_on_host() {
        // a -> b -> c (by key); a hot on p1, b on p1, c on p0:
        // b's child c leaves the partition, so neither a nor b can be inner.
        let pr = ProcedureBuilder::new("chain")
            .read_for_update(TableId(1), 0, "a")
            .read_with_key_from(TableId(1), &[OpId(0)], "b", |st| {
                st.output_req(OpId(0))[0].as_i64() as u64
            })
            .read_with_key_from(TableId(1), &[OpId(1)], "c", |st| {
                st.output_req(OpId(1))[0].as_i64() as u64
            })
            .build()
            .unwrap();
        let split = decide_regions(&pr, &[p(1), p(1), p(0)], &[true, false, false]);
        assert!(!split.is_two_region());
    }
}
