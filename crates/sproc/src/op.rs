//! The operation IR for stored procedures.
//!
//! Each operation touches exactly one record. Keys come either from the
//! transaction's input parameters ([`KeyExpr::Param`]) or are computed from
//! the outputs of earlier reads ([`KeyExpr::Computed`]) — the latter is a
//! **primary-key dependency** (pk-dep), the only kind of dependency that
//! constrains lock-acquisition reordering (§3.2). New values may reference
//! any earlier output; those **value dependencies** (v-deps) never constrain
//! reordering because they only matter once the lock is already held.

use crate::exec::ExecState;
use chiller_common::ids::{OpId, TableId};
use chiller_common::value::Row;
use std::fmt;
use std::sync::Arc;

/// Computes a key from run-time state.
pub type KeyFn = Arc<dyn Fn(&ExecState) -> u64 + Send + Sync>;
/// Computes a replacement row from the current row and run-time state.
pub type ApplyFn = Arc<dyn Fn(&Row, &ExecState) -> Row + Send + Sync>;
/// Builds a fresh row for an insert.
pub type RowFn = Arc<dyn Fn(&ExecState) -> Row + Send + Sync>;
/// Integrity check; `Err(reason)` aborts the transaction (logic abort).
pub type GuardFn = Arc<dyn Fn(&ExecState) -> Result<(), &'static str> + Send + Sync>;
/// Resolves a *representative* key from parameters only, for operations
/// whose exact key is not yet known at decision time (e.g. an order-line
/// insert whose o_id comes from reading the district). The representative
/// must land on the same partition as the eventual real key under every
/// placement the workload uses (e.g. same warehouse prefix).
pub type HintFn = Arc<dyn Fn(&ExecState) -> u64 + Send + Sync>;

/// How an operation's primary key is obtained.
#[derive(Clone)]
pub enum KeyExpr {
    /// `params[i]` interpreted as u64: known before execution starts.
    Param(usize),
    /// A key constant baked into the procedure (rare; used in tests).
    Const(u64),
    /// Computed from the outputs of earlier read operations: a pk-dep on
    /// each op in `deps`.
    Computed { deps: Vec<OpId>, f: KeyFn },
}

impl KeyExpr {
    /// Ops this key has a primary-key dependency on.
    pub fn pk_deps(&self) -> &[OpId] {
        match self {
            KeyExpr::Computed { deps, .. } => deps,
            _ => &[],
        }
    }

    /// Whether the key is resolvable before any read executes.
    pub fn is_static(&self) -> bool {
        !matches!(self, KeyExpr::Computed { .. })
    }

    /// Resolve the key if all pk-dep outputs are available.
    pub fn resolve(&self, st: &ExecState) -> Option<u64> {
        match self {
            KeyExpr::Param(i) => Some(st.param_u64(*i)),
            KeyExpr::Const(k) => Some(*k),
            KeyExpr::Computed { deps, f } => {
                if deps.iter().all(|d| st.output(*d).is_some()) {
                    Some(f(st))
                } else {
                    None
                }
            }
        }
    }
}

impl fmt::Debug for KeyExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KeyExpr::Param(i) => write!(f, "param[{i}]"),
            KeyExpr::Const(k) => write!(f, "const({k})"),
            KeyExpr::Computed { deps, .. } => write!(f, "computed{deps:?}"),
        }
    }
}

/// What the operation does to its record.
#[derive(Clone)]
pub enum OpKind {
    /// Read the record. `for_update` acquires an exclusive lock up front
    /// (the paper's `read_with_wl`), avoiding an upgrade later.
    Read { for_update: bool },
    /// Read-modify-write: replaces the row via the apply function.
    Update(ApplyFn),
    /// Insert a new record.
    Insert(RowFn),
    /// Delete the record.
    Delete,
}

impl OpKind {
    pub fn is_write(&self) -> bool {
        !matches!(self, OpKind::Read { .. })
    }

    /// Whether execution produces an output row usable by later ops.
    pub fn produces_output(&self) -> bool {
        matches!(self, OpKind::Read { .. } | OpKind::Update(_))
    }
}

impl fmt::Debug for OpKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OpKind::Read { for_update: true } => write!(f, "ReadForUpdate"),
            OpKind::Read { for_update: false } => write!(f, "Read"),
            OpKind::Update(_) => write!(f, "Update"),
            OpKind::Insert(_) => write!(f, "Insert"),
            OpKind::Delete => write!(f, "Delete"),
        }
    }
}

/// One operation of a stored procedure.
#[derive(Clone)]
pub struct Op {
    pub id: OpId,
    pub table: TableId,
    pub key: KeyExpr,
    pub kind: OpKind,
    /// Ops whose outputs this op's new *values* reference (v-deps). These do
    /// not constrain lock ordering but do constrain execution order.
    pub value_deps: Vec<OpId>,
    /// Representative key resolvable from params alone, for decision-time
    /// partition lookup when `key` is computed. `None` means the location is
    /// unknown at decision time, which (per §3.3 step 1) disqualifies this
    /// op's pk-parents from the inner region unless co-located by fiat.
    pub home_hint: Option<HintFn>,
    /// Human-readable label for diagnostics ("read flight", "insert seat").
    pub label: &'static str,
}

impl Op {
    /// All ops that must execute before this one (pk-deps ∪ v-deps).
    pub fn exec_deps(&self) -> impl Iterator<Item = OpId> + '_ {
        self.key
            .pk_deps()
            .iter()
            .copied()
            .chain(self.value_deps.iter().copied())
    }

    /// The partition-relevant key available at decision time, if any:
    /// static keys resolve exactly; computed keys fall back to the hint.
    pub fn decision_key(&self, st: &ExecState) -> Option<u64> {
        match &self.key {
            KeyExpr::Param(i) => Some(st.param_u64(*i)),
            KeyExpr::Const(k) => Some(*k),
            KeyExpr::Computed { .. } => self.home_hint.as_ref().map(|h| h(st)),
        }
    }
}

impl fmt::Debug for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{:?} {} key={:?}",
            self.id, self.kind, self.label, self.key
        )
    }
}

/// An integrity constraint over run-time state. Evaluated as soon as every
/// dep's output is available; failure is a logic abort (the procedure's
/// `else abort` branch).
#[derive(Clone)]
pub struct Guard {
    /// Outputs the predicate reads.
    pub deps: Vec<OpId>,
    pub check: GuardFn,
    pub label: &'static str,
}

impl fmt::Debug for Guard {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "guard({}) deps={:?}", self.label, self.deps)
    }
}

/// A registered stored procedure: operations plus precomputed static
/// analysis ([`crate::graph::DepGraph`]).
#[derive(Clone)]
pub struct Procedure {
    pub name: &'static str,
    pub ops: Vec<Op>,
    pub guards: Vec<Guard>,
    pub graph: crate::graph::DepGraph,
}

impl Procedure {
    pub fn op(&self, id: OpId) -> &Op {
        &self.ops[id.idx()]
    }

    pub fn num_ops(&self) -> usize {
        self.ops.len()
    }
}

impl fmt::Debug for Procedure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "procedure {} ({} ops)", self.name, self.ops.len())?;
        for op in &self.ops {
            writeln!(f, "  {op:?}")?;
        }
        for g in &self.guards {
            writeln!(f, "  {g:?}")?;
        }
        Ok(())
    }
}
