//! Fluent construction of stored procedures.
//!
//! Wraps the raw [`Op`] IR with convenience methods for the common shapes
//! (read by parameter, read-modify-write, insert with computed key, guards)
//! while still allowing fully custom operations via [`ProcedureBuilder::op`].
//! `build` runs the static analysis of §3.2 and fails on malformed
//! procedures.

use crate::exec::ExecState;
use crate::graph::DepGraph;
use crate::op::{Guard, KeyExpr, Op, OpKind, Procedure};
use chiller_common::error::Result;
use chiller_common::ids::{OpId, TableId};
use chiller_common::value::Row;
use std::sync::Arc;

/// Builder for [`Procedure`].
#[derive(Default)]
pub struct ProcedureBuilder {
    name: &'static str,
    ops: Vec<Op>,
    guards: Vec<Guard>,
}

impl ProcedureBuilder {
    pub fn new(name: &'static str) -> Self {
        ProcedureBuilder {
            name,
            ops: Vec::new(),
            guards: Vec::new(),
        }
    }

    fn next_id(&self) -> OpId {
        OpId(self.ops.len() as u16)
    }

    /// Id the next pushed op will get — lets callers capture ids while
    /// chaining.
    pub fn peek_id(&self) -> OpId {
        self.next_id()
    }

    /// Push a fully custom op. Its `id` is assigned by the builder.
    pub fn op(
        mut self,
        table: TableId,
        key: KeyExpr,
        kind: OpKind,
        value_deps: Vec<OpId>,
        label: &'static str,
    ) -> Self {
        let id = self.next_id();
        self.ops.push(Op {
            id,
            table,
            key,
            kind,
            value_deps,
            home_hint: None,
            label,
        });
        self
    }

    /// Add value dependencies to the most recently pushed op (outputs its
    /// row-computation reads beyond what its key already implies — the
    /// dashed v-dep edges of the paper's Figure 4).
    pub fn value_deps(mut self, deps: &[OpId]) -> Self {
        let op = self
            .ops
            .last_mut()
            .expect("value_deps() requires a prior op");
        op.value_deps.extend_from_slice(deps);
        self
    }

    /// Attach a home hint to the most recently pushed op (decision-time
    /// partition resolution for computed keys; see [`crate::op::HintFn`]).
    pub fn hint(mut self, f: impl Fn(&ExecState) -> u64 + Send + Sync + 'static) -> Self {
        let op = self.ops.last_mut().expect("hint() requires a prior op");
        op.home_hint = Some(Arc::new(f));
        self
    }

    /// Shared-lock read of the record keyed by `params[key_param]`.
    pub fn read(self, table: TableId, key_param: usize, label: &'static str) -> Self {
        self.op(
            table,
            KeyExpr::Param(key_param),
            OpKind::Read { for_update: false },
            vec![],
            label,
        )
    }

    /// Exclusive-lock read (the paper's `read_with_wl`) — use when the
    /// record will be updated later, avoiding a lock upgrade.
    pub fn read_for_update(self, table: TableId, key_param: usize, label: &'static str) -> Self {
        self.op(
            table,
            KeyExpr::Param(key_param),
            OpKind::Read { for_update: true },
            vec![],
            label,
        )
    }

    /// Read whose key is computed from earlier outputs (pk-dep on `deps`).
    pub fn read_with_key_from(
        self,
        table: TableId,
        deps: &[OpId],
        label: &'static str,
        key: impl Fn(&ExecState) -> u64 + Send + Sync + 'static,
    ) -> Self {
        self.op(
            table,
            KeyExpr::Computed {
                deps: deps.to_vec(),
                f: Arc::new(key),
            },
            OpKind::Read { for_update: false },
            vec![],
            label,
        )
    }

    /// Read-modify-write of the record keyed by `params[key_param]`.
    pub fn update(
        self,
        table: TableId,
        key_param: usize,
        label: &'static str,
        apply: impl Fn(&Row, &ExecState) -> Row + Send + Sync + 'static,
    ) -> Self {
        self.op(
            table,
            KeyExpr::Param(key_param),
            OpKind::Update(Arc::new(apply)),
            vec![],
            label,
        )
    }

    /// Read-modify-write whose new values reference earlier outputs
    /// (v-deps on `value_deps`).
    pub fn update_deps(
        self,
        table: TableId,
        key_param: usize,
        value_deps: &[OpId],
        label: &'static str,
        apply: impl Fn(&Row, &ExecState) -> Row + Send + Sync + 'static,
    ) -> Self {
        self.op(
            table,
            KeyExpr::Param(key_param),
            OpKind::Update(Arc::new(apply)),
            value_deps.to_vec(),
            label,
        )
    }

    /// Update with a computed key (pk-dep on `deps`).
    pub fn update_with_key_from(
        self,
        table: TableId,
        deps: &[OpId],
        label: &'static str,
        key: impl Fn(&ExecState) -> u64 + Send + Sync + 'static,
        apply: impl Fn(&Row, &ExecState) -> Row + Send + Sync + 'static,
    ) -> Self {
        self.op(
            table,
            KeyExpr::Computed {
                deps: deps.to_vec(),
                f: Arc::new(key),
            },
            OpKind::Update(Arc::new(apply)),
            vec![],
            label,
        )
    }

    /// Insert with a key from `params[key_param]`.
    pub fn insert(
        self,
        table: TableId,
        key_param: usize,
        value_deps: &[OpId],
        label: &'static str,
        row: impl Fn(&ExecState) -> Row + Send + Sync + 'static,
    ) -> Self {
        self.op(
            table,
            KeyExpr::Param(key_param),
            OpKind::Insert(Arc::new(row)),
            value_deps.to_vec(),
            label,
        )
    }

    /// Insert whose key is computed from earlier outputs (pk-dep on `deps`)
    /// — the paper's seat-insert pattern.
    pub fn insert_with_key_from(
        self,
        table: TableId,
        deps: &[OpId],
        label: &'static str,
        key: impl Fn(&ExecState) -> u64 + Send + Sync + 'static,
        row: impl Fn(&ExecState) -> Row + Send + Sync + 'static,
    ) -> Self {
        self.op(
            table,
            KeyExpr::Computed {
                deps: deps.to_vec(),
                f: Arc::new(key),
            },
            OpKind::Insert(Arc::new(row)),
            vec![],
            label,
        )
    }

    /// Delete the record keyed by `params[key_param]`.
    pub fn delete(self, table: TableId, key_param: usize, label: &'static str) -> Self {
        self.op(
            table,
            KeyExpr::Param(key_param),
            OpKind::Delete,
            vec![],
            label,
        )
    }

    /// Integrity constraint over the outputs of `deps`.
    pub fn guard(
        mut self,
        deps: &[OpId],
        label: &'static str,
        check: impl Fn(&ExecState) -> std::result::Result<(), &'static str> + Send + Sync + 'static,
    ) -> Self {
        self.guards.push(Guard {
            deps: deps.to_vec(),
            check: Arc::new(check),
            label,
        });
        self
    }

    /// Run static analysis and produce the procedure.
    pub fn build(self) -> Result<Procedure> {
        let graph = DepGraph::build(self.name, &self.ops, &self.guards)?;
        Ok(Procedure {
            name: self.name,
            ops: self.ops,
            guards: self.guards,
            graph,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chiller_common::value::Value;

    /// The paper's Figure 4 flight-booking procedure, faithfully encoded.
    ///
    /// params: [0]=flight_id, [1]=cust_id
    /// ops: 0 read flight (for update), 1 read customer (for update),
    ///      2 read tax (key from customer.state → pk-dep on 1),
    ///      3 update flight seats, 4 update customer balance (v-dep 0, 2),
    ///      5 insert seat (key from flight → pk-dep on 0, v-dep on 1)
    pub fn flight_booking() -> Procedure {
        const FLIGHT: TableId = TableId(1);
        const CUSTOMER: TableId = TableId(2);
        const TAX: TableId = TableId(3);
        const SEATS: TableId = TableId(4);
        ProcedureBuilder::new("flight_booking")
            .read_for_update(FLIGHT, 0, "read flight")
            .read_for_update(CUSTOMER, 1, "read customer")
            .read_with_key_from(TAX, &[OpId(1)], "read tax", |st| {
                st.output_req(OpId(1))[2].as_i64() as u64 // c.state
            })
            .update_deps(FLIGHT, 0, &[OpId(0)], "decrement seats", |row, _| {
                let mut r = row.clone();
                r[1] = Value::I64(r[1].as_i64() - 1); // f.seats -= 1
                r
            })
            .update_deps(
                CUSTOMER,
                1,
                &[OpId(0), OpId(2)],
                "deduct balance",
                |row, st| {
                    let price = st.output_req(OpId(0))[2].as_f64();
                    let tax = st.output_req(OpId(2))[1].as_f64();
                    let mut r = row.clone();
                    r[1] = Value::F64(r[1].as_f64() - price * (1.0 + tax));
                    r
                },
            )
            .insert_with_key_from(
                SEATS,
                &[OpId(0)],
                "insert seat",
                |st| {
                    let flight = st.output_req(OpId(0)); // [id, seats, price]
                    (flight[0].as_i64() as u64) << 32 | flight[1].as_i64() as u64
                },
                |st| {
                    vec![
                        st.params()[1].clone(),            // cust_id
                        st.output_req(OpId(1))[1].clone(), // c.name
                    ]
                },
            )
            .value_deps(&[OpId(1)])
            .hint(|st| st.param_u64(0) << 32)
            .guard(&[OpId(0), OpId(1), OpId(2)], "balance & seats", |st| {
                let f = st.output_req(OpId(0));
                let c = st.output_req(OpId(1));
                let t = st.output_req(OpId(2));
                let cost = f[2].as_f64() * (1.0 + t[1].as_f64());
                if c[3].as_f64() < cost {
                    return Err("insufficient balance");
                }
                if f[1].as_i64() <= 0 {
                    return Err("no seats left");
                }
                Ok(())
            })
            .build()
            .unwrap()
    }

    #[test]
    fn flight_booking_dependency_graph_matches_paper() {
        let p = flight_booking();
        assert_eq!(p.num_ops(), 6);
        // sins has a pk-dep on fread (seat id from flight) …
        assert_eq!(p.graph.pk_parents[5], vec![OpId(0)]);
        // … and tax read has a pk-dep on customer read (state).
        assert_eq!(p.graph.pk_parents[2], vec![OpId(1)]);
        // Customer-balance update has v-deps only — it never constrains
        // reordering.
        assert!(p.graph.pk_parents[4].is_empty());
        assert_eq!(p.graph.v_parents[4], vec![OpId(0), OpId(2)]);
        // fread's only pk-child is the seat insert.
        assert_eq!(p.graph.pk_children[0], vec![OpId(5)]);
    }

    #[test]
    fn peek_id_tracks_ops() {
        let b = ProcedureBuilder::new("t");
        assert_eq!(b.peek_id(), OpId(0));
        let b = b.read(TableId(1), 0, "r");
        assert_eq!(b.peek_id(), OpId(1));
    }

    #[test]
    fn build_rejects_bad_guard() {
        let r = ProcedureBuilder::new("bad")
            .read(TableId(1), 0, "r")
            .guard(&[OpId(7)], "nope", |_| Ok(()))
            .build();
        assert!(r.is_err());
    }

    #[test]
    fn key_resolution_with_outputs() {
        let p = flight_booking();
        let mut st = ExecState::new(vec![Value::I64(9), Value::I64(1)], p.num_ops());
        // Seat-insert key unresolvable before flight read…
        assert_eq!(p.op(OpId(5)).key.resolve(&st), None);
        // …and its decision-time hint resolves from params alone.
        let hinted = p.op(OpId(5)).decision_key(&st);
        assert_eq!(hinted, Some(9u64 << 32));
        // After the flight read the real key resolves.
        st.set_output(
            OpId(0),
            vec![Value::I64(9), Value::I64(3), Value::F64(100.0)],
        );
        assert_eq!(p.op(OpId(5)).key.resolve(&st), Some((9u64 << 32) | 3));
    }

    #[test]
    fn guard_failure_reason_propagates() {
        let p = flight_booking();
        let mut st = ExecState::new(vec![Value::I64(9), Value::I64(1)], p.num_ops());
        st.set_output(
            OpId(0),
            vec![Value::I64(9), Value::I64(0), Value::F64(100.0)],
        );
        st.set_output(
            OpId(1),
            vec![
                Value::I64(1),
                Value::from("bob"),
                Value::I64(2),
                Value::F64(1e6),
            ],
        );
        st.set_output(OpId(2), vec![Value::I64(2), Value::F64(0.1)]);
        let err = (p.guards[0].check)(&st).unwrap_err();
        assert_eq!(err, "no seats left");
    }
}
