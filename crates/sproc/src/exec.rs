//! Run-time execution state for one transaction instance.
//!
//! Carries the input parameters and the output row of every completed
//! operation. Key functions, apply functions and guards all read from this
//! state, which is what lets the engines execute operations in any legal
//! order (outer region first, inner region later, possibly on a different
//! node after being shipped in an RPC).

use chiller_common::value::{Row, Value};

/// Parameters + per-op outputs of a transaction in flight.
#[derive(Debug, Clone, Default)]
pub struct ExecState {
    params: Vec<Value>,
    outputs: Vec<Option<Row>>,
}

impl ExecState {
    pub fn new(params: Vec<Value>, num_ops: usize) -> Self {
        ExecState {
            params,
            outputs: vec![None; num_ops],
        }
    }

    pub fn params(&self) -> &[Value] {
        &self.params
    }

    /// Parameter as u64 key material.
    #[inline]
    pub fn param_u64(&self, i: usize) -> u64 {
        self.params[i].as_i64() as u64
    }

    #[inline]
    pub fn param_i64(&self, i: usize) -> i64 {
        self.params[i].as_i64()
    }

    #[inline]
    pub fn param_f64(&self, i: usize) -> f64 {
        self.params[i].as_f64()
    }

    /// Output row of op `id`, if it has executed.
    #[inline]
    pub fn output(&self, id: chiller_common::ids::OpId) -> Option<&Row> {
        self.outputs.get(id.idx()).and_then(|o| o.as_ref())
    }

    /// Output row of op `id`; panics if not yet executed — dependency
    /// violations are engine bugs, not run-time conditions.
    #[inline]
    pub fn output_req(&self, id: chiller_common::ids::OpId) -> &Row {
        self.output(id)
            .unwrap_or_else(|| panic!("output of {id} not available"))
    }

    /// Record the output of op `id`.
    pub fn set_output(&mut self, id: chiller_common::ids::OpId, row: Row) {
        self.outputs[id.idx()] = Some(row);
    }

    /// Merge outputs produced elsewhere (the inner host returns outputs the
    /// coordinator needs for outer phase-2 updates, and vice versa the
    /// coordinator ships outer outputs to the inner host in the RPC).
    pub fn absorb(&mut self, other: &ExecState) {
        for (mine, theirs) in self.outputs.iter_mut().zip(&other.outputs) {
            if mine.is_none() {
                mine.clone_from(theirs);
            }
        }
    }

    /// Number of op output slots.
    pub fn num_ops(&self) -> usize {
        self.outputs.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chiller_common::ids::OpId;

    #[test]
    fn params_accessors() {
        let st = ExecState::new(vec![Value::I64(7), Value::F64(1.5)], 2);
        assert_eq!(st.param_u64(0), 7);
        assert_eq!(st.param_i64(0), 7);
        assert_eq!(st.param_f64(1), 1.5);
    }

    #[test]
    fn outputs_roundtrip() {
        let mut st = ExecState::new(vec![], 3);
        assert!(st.output(OpId(1)).is_none());
        st.set_output(OpId(1), vec![Value::I64(9)]);
        assert_eq!(st.output_req(OpId(1))[0].as_i64(), 9);
    }

    #[test]
    #[should_panic(expected = "not available")]
    fn missing_output_panics_on_req() {
        let st = ExecState::new(vec![], 1);
        st.output_req(OpId(0));
    }

    #[test]
    fn absorb_fills_gaps_without_overwriting() {
        let mut a = ExecState::new(vec![], 2);
        a.set_output(OpId(0), vec![Value::I64(1)]);
        let mut b = ExecState::new(vec![], 2);
        b.set_output(OpId(0), vec![Value::I64(99)]);
        b.set_output(OpId(1), vec![Value::I64(2)]);
        a.absorb(&b);
        assert_eq!(a.output_req(OpId(0))[0].as_i64(), 1, "must not overwrite");
        assert_eq!(a.output_req(OpId(1))[0].as_i64(), 2, "must fill gap");
    }
}
