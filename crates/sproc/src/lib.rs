//! # chiller-sproc
//!
//! Stored procedures as analyzable, executable operation DAGs — the paper's
//! §3.2/§3.3 machinery:
//!
//! * [`op`] — the operation IR: reads, updates, inserts, deletes whose keys
//!   are either transaction parameters or computed from earlier reads
//!   (primary-key dependencies), and whose new values may reference any
//!   earlier output (value dependencies).
//! * [`graph`] — static analysis run once when a procedure is registered:
//!   builds the dependency graph distinguishing **pk-deps** (which constrain
//!   lock-acquisition reordering) from **v-deps** (which do not), and
//!   validates the procedure.
//! * [`exec`] — the runtime execution state: parameters, per-op outputs,
//!   guard evaluation. Used by every concurrency-control engine.
//! * [`decision`] — the run-time region decision: given the hot-record
//!   lookup and the partition of every operation, determine which records
//!   form the inner region and which partition hosts it.
//! * [`builder`] — ergonomic construction of procedures.
//!
//! The flight-booking procedure of the paper's Figure 4 is reproduced in
//! this crate's tests and in the `flight_booking` example.

pub mod builder;
pub mod decision;
pub mod exec;
pub mod graph;
pub mod op;

pub use builder::ProcedureBuilder;
pub use decision::{decide_regions, RegionSplit};
pub use exec::ExecState;
pub use graph::DepGraph;
pub use op::{Guard, KeyExpr, Op, OpKind, Procedure};
