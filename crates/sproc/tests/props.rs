//! Property tests for the region decision (§3.3 legality invariants).

use chiller_common::ids::{OpId, PartitionId, TableId};
use chiller_sproc::{decide_regions, ProcedureBuilder};
use proptest::prelude::*;

/// A chain procedure: op 0 reads by param; each later op keys off its
/// predecessor (pk-chain) with probability, else an independent param read.
fn chain_proc(chained: &[bool]) -> chiller_sproc::Procedure {
    let mut b = ProcedureBuilder::new("chain").read_for_update(TableId(1), 0, "head");
    for (i, &link) in chained.iter().enumerate() {
        let prev = OpId(i as u16);
        if link {
            b = b.read_with_key_from(TableId(1), &[prev], "chained", move |st| {
                st.output_req(prev)[0].as_i64() as u64
            });
        } else {
            b = b.read_for_update(TableId(1), 0, "free");
        }
    }
    b.build().unwrap()
}

proptest! {
    /// Decision invariants, for arbitrary chains / partition maps / hot
    /// flags:
    /// 1. inner ∪ outer is a partition of all ops;
    /// 2. every inner op's record lives on the inner host;
    /// 3. every pk-child of an inner op is also inner (the unilateral
    ///    commit legality rule);
    /// 4. no inner region without a hot inner op.
    #[test]
    fn decision_invariants(
        chained in prop::collection::vec(any::<bool>(), 0..6),
        parts in prop::collection::vec(prop::option::of(0u32..3), 7),
        hot in prop::collection::vec(any::<bool>(), 7),
    ) {
        let p = chain_proc(&chained);
        let n = p.num_ops();
        let op_parts: Vec<Option<PartitionId>> =
            parts.iter().take(n).map(|o| o.map(PartitionId)).collect();
        let op_hot: Vec<bool> = hot.iter().take(n).copied().collect();
        let split = decide_regions(&p, &op_parts, &op_hot);

        // 1: partition of ops.
        let mut all: Vec<OpId> = split.inner_ops.iter().chain(&split.outer_ops).copied().collect();
        all.sort();
        prop_assert_eq!(all, (0..n as u16).map(OpId).collect::<Vec<_>>());

        if let Some(host) = split.inner_host {
            // 2: inner ops on the host partition.
            for op in &split.inner_ops {
                prop_assert_eq!(op_parts[op.idx()], Some(host));
            }
            // 3: pk-closure.
            for op in &split.inner_ops {
                for child in &p.graph.pk_children[op.idx()] {
                    prop_assert!(
                        split.inner_ops.contains(child),
                        "pk-child {child} of inner {op} escaped the inner region"
                    );
                }
            }
            // 4: at least one hot inner op.
            prop_assert!(split.inner_ops.iter().any(|o| op_hot[o.idx()]));
        }
    }
}
