//! Property tests for the foundation types.

use chiller_common::metrics::Histogram;
use chiller_common::rng::{seeded, Zipf};
use proptest::prelude::*;

proptest! {
    /// The Zipf sampler always returns in-domain ranks and its CDF is
    /// monotone (pmf non-negative, sums to 1).
    #[test]
    fn zipf_sound(n in 1usize..500, theta in 0.0f64..2.0, seed in any::<u64>()) {
        let z = Zipf::new(n, theta);
        let mut rng = seeded(seed);
        for _ in 0..64 {
            prop_assert!(z.sample(&mut rng) < n);
        }
        let total: f64 = (0..n).map(|i| z.pmf(i)).sum();
        prop_assert!((total - 1.0).abs() < 1e-6);
        for i in 1..n {
            prop_assert!(z.pmf(i) <= z.pmf(i - 1) + 1e-12, "pmf must be non-increasing");
        }
    }

    /// Histogram quantiles are bounded by min/max and ordered; mean lies
    /// within [min, max].
    #[test]
    fn histogram_quantiles_ordered(values in prop::collection::vec(1u64..1_000_000, 1..200)) {
        let mut h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        let (min, max) = (h.min(), h.max());
        prop_assert!(h.p50() >= min && h.p50() <= max);
        prop_assert!(h.p99() >= h.p50());
        prop_assert!(h.mean() >= min as f64 - 1e-9 && h.mean() <= max as f64 + 1e-9);
        prop_assert_eq!(h.count(), values.len() as u64);
    }

    /// Merging histograms equals recording the union.
    #[test]
    fn histogram_merge_is_union(
        a in prop::collection::vec(1u64..100_000, 0..100),
        b in prop::collection::vec(1u64..100_000, 0..100),
    ) {
        let mut ha = Histogram::new();
        let mut hb = Histogram::new();
        let mut hu = Histogram::new();
        for &v in &a { ha.record(v); hu.record(v); }
        for &v in &b { hb.record(v); hu.record(v); }
        ha.merge(&hb);
        prop_assert_eq!(ha.count(), hu.count());
        prop_assert_eq!(ha.max(), hu.max());
        prop_assert_eq!(ha.p50(), hu.p50());
        prop_assert_eq!(ha.p99(), hu.p99());
    }
}
