//! Deterministic random utilities: seeded RNG construction, a Zipf sampler
//! (used to synthesize the Instacart-like skew) and TPC-C's `NURand`.
//!
//! Every source of randomness in the workspace flows from an explicit seed so
//! the whole simulation — data generation, transaction mixes, conflicts — is
//! reproducible byte-for-byte.

use rand::distributions::Distribution;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Build a seeded RNG. Sub-streams derive their own seeds via [`derive_seed`]
/// so adding a consumer never perturbs existing streams.
pub fn seeded(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Derive an independent stream seed from a base seed and a stream label.
///
/// Uses SplitMix64 finalization, which is enough mixing to decorrelate
/// streams for simulation purposes.
pub fn derive_seed(base: u64, stream: u64) -> u64 {
    let mut z = base ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Zipf-distributed sampler over `{0, 1, .., n-1}` with exponent `theta`.
///
/// Rank 0 is the most popular element. Uses the inverse-CDF method over a
/// precomputed cumulative table: O(n) build, O(log n) sample. The workload
/// generators build one sampler per table so the cost is paid once.
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Create a sampler over `n` items with skew `theta` (`theta = 0` is
    /// uniform; common benchmark values are 0.8–1.2).
    ///
    /// # Panics
    /// Panics if `n == 0` or `theta < 0`.
    pub fn new(n: usize, theta: f64) -> Self {
        assert!(n > 0, "Zipf over empty domain");
        assert!(theta >= 0.0, "negative Zipf exponent");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0f64;
        for i in 0..n {
            acc += 1.0 / ((i + 1) as f64).powf(theta);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        // Guard against floating-point rounding leaving the last entry below 1.
        *cdf.last_mut().expect("n > 0") = 1.0;
        Zipf { cdf }
    }

    /// Number of items in the domain.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Probability mass of rank `i`.
    pub fn pmf(&self, i: usize) -> f64 {
        if i == 0 {
            self.cdf[0]
        } else {
            self.cdf[i] - self.cdf[i - 1]
        }
    }

    /// Sample a rank.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        // partition_point returns the first rank whose cdf >= u.
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

impl Distribution<usize> for Zipf {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        Zipf::sample(self, rng)
    }
}

/// TPC-C `NURand(A, x, y)` non-uniform random, with the standard constant C
/// fixed per instantiation (spec §2.1.6).
#[derive(Debug, Clone, Copy)]
pub struct NuRand {
    a: u64,
    c: u64,
    x: u64,
    y: u64,
}

impl NuRand {
    pub fn new(a: u64, x: u64, y: u64, c: u64) -> Self {
        NuRand { a, c, x, y }
    }

    /// Standard parameters for customer ids: `NURand(1023, 1, 3000)`.
    pub fn customer_id(c: u64) -> Self {
        NuRand::new(1023, 1, 3000, c)
    }

    /// Standard parameters for item ids: `NURand(8191, 1, 100000)`.
    pub fn item_id(c: u64) -> Self {
        NuRand::new(8191, 1, 100_000, c)
    }

    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        let r1 = rng.gen_range(0..=self.a);
        let r2 = rng.gen_range(self.x..=self.y);
        (((r1 | r2) + self.c) % (self.y - self.x + 1)) + self.x
    }
}

/// Uniformly pick one element of a non-empty slice.
pub fn pick<'a, T, R: Rng + ?Sized>(rng: &mut R, items: &'a [T]) -> &'a T {
    &items[rng.gen_range(0..items.len())]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_is_deterministic() {
        let mut a = seeded(42);
        let mut b = seeded(42);
        let xs: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        assert_eq!(xs, ys);
    }

    #[test]
    fn derived_streams_differ() {
        assert_ne!(derive_seed(1, 0), derive_seed(1, 1));
        assert_ne!(derive_seed(1, 0), derive_seed(2, 0));
    }

    #[test]
    fn zipf_uniform_when_theta_zero() {
        let z = Zipf::new(4, 0.0);
        for i in 0..4 {
            assert!((z.pmf(i) - 0.25).abs() < 1e-12);
        }
    }

    #[test]
    fn zipf_rank0_most_popular() {
        let z = Zipf::new(100, 1.0);
        assert!(z.pmf(0) > z.pmf(1));
        assert!(z.pmf(1) > z.pmf(50));
        let total: f64 = (0..100).map(|i| z.pmf(i)).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn zipf_empirical_matches_pmf() {
        let z = Zipf::new(10, 1.0);
        let mut rng = seeded(7);
        let mut counts = [0usize; 10];
        let n = 200_000;
        for _ in 0..n {
            counts[z.sample(&mut rng)] += 1;
        }
        for (i, &count) in counts.iter().enumerate() {
            let emp = count as f64 / n as f64;
            assert!(
                (emp - z.pmf(i)).abs() < 0.01,
                "rank {i}: emp {emp} vs pmf {}",
                z.pmf(i)
            );
        }
    }

    #[test]
    fn nurand_in_range() {
        let nu = NuRand::customer_id(123);
        let mut rng = seeded(3);
        for _ in 0..10_000 {
            let v = nu.sample(&mut rng);
            assert!((1..=3000).contains(&v));
        }
    }

    #[test]
    fn nurand_is_skewed() {
        // NURand concentrates mass; verify that the most frequent value
        // appears far above the uniform expectation.
        let nu = NuRand::item_id(7);
        let mut rng = seeded(9);
        let mut counts = std::collections::HashMap::new();
        let n = 100_000;
        for _ in 0..n {
            *counts.entry(nu.sample(&mut rng)).or_insert(0usize) += 1;
        }
        let max = counts.values().copied().max().unwrap();
        assert!(max as f64 > 2.0 * (n as f64 / 100_000.0));
    }

    #[test]
    fn pick_covers_all() {
        let mut rng = seeded(5);
        let items = [1, 2, 3];
        let mut seen = std::collections::HashSet::new();
        for _ in 0..100 {
            seen.insert(*pick(&mut rng, &items));
        }
        assert_eq!(seen.len(), 3);
    }
}
