//! Virtual time for the discrete-event simulation.
//!
//! All latencies in the simulated cluster are expressed in nanoseconds of
//! *virtual* time. Throughput numbers reported by the benchmark harness are
//! committed transactions divided by elapsed virtual time, which makes runs
//! deterministic and independent of host machine speed.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in virtual time, in nanoseconds since simulation start.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct SimTime(pub u64);

impl SimTime {
    pub const ZERO: SimTime = SimTime(0);

    #[inline]
    pub fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    #[inline]
    pub fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    #[inline]
    pub fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    #[inline]
    pub fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }

    #[inline]
    pub fn as_nanos(self) -> u64 {
        self.0
    }

    #[inline]
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000_000.0
    }

    /// Saturating difference; useful for spans where clock skew is impossible
    /// but defensive arithmetic keeps invariants simple.
    #[inline]
    pub fn saturating_since(self, earlier: SimTime) -> Duration {
        Duration(self.0.saturating_sub(earlier.0))
    }

    #[inline]
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }
}

/// A span of virtual time, in nanoseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct Duration(pub u64);

impl Duration {
    pub const ZERO: Duration = Duration(0);

    #[inline]
    pub fn from_nanos(ns: u64) -> Self {
        Duration(ns)
    }

    #[inline]
    pub fn from_micros(us: u64) -> Self {
        Duration(us * 1_000)
    }

    #[inline]
    pub fn from_millis(ms: u64) -> Self {
        Duration(ms * 1_000_000)
    }

    #[inline]
    pub fn as_nanos(self) -> u64 {
        self.0
    }

    #[inline]
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }
}

impl Add<Duration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: Duration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<Duration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = Duration;
    #[inline]
    fn sub(self, rhs: SimTime) -> Duration {
        debug_assert!(self.0 >= rhs.0, "negative sim-time span");
        Duration(self.0 - rhs.0)
    }
}

impl Add for Duration {
    type Output = Duration;
    #[inline]
    fn add(self, rhs: Duration) -> Duration {
        Duration(self.0 + rhs.0)
    }
}

impl AddAssign for Duration {
    #[inline]
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.0;
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={}ns", self.0)
    }
}

impl fmt::Debug for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1e6)
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}us", self.0 as f64 / 1e3)
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        assert_eq!(SimTime::from_micros(3).as_nanos(), 3_000);
        assert_eq!(SimTime::from_millis(2).as_nanos(), 2_000_000);
        assert_eq!(SimTime::from_secs(1).as_secs_f64(), 1.0);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_micros(10) + Duration::from_micros(5);
        assert_eq!(t.as_nanos(), 15_000);
        assert_eq!((t - SimTime::from_micros(10)).as_nanos(), 5_000);
    }

    #[test]
    fn saturating_since_never_underflows() {
        let early = SimTime::from_nanos(5);
        let late = SimTime::from_nanos(9);
        assert_eq!(early.saturating_since(late), Duration::ZERO);
        assert_eq!(late.saturating_since(early), Duration(4));
    }

    #[test]
    fn debug_duration_units() {
        assert_eq!(format!("{:?}", Duration(999)), "999ns");
        assert_eq!(format!("{:?}", Duration(1_500)), "1.500us");
        assert_eq!(format!("{:?}", Duration(2_000_000)), "2.000ms");
    }
}
