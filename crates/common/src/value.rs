//! Cell values and rows for the in-memory storage layer.
//!
//! Records are stored as typed rows (`Vec<Value>`). The simulation does not
//! need a packed byte layout for correctness; the storage layer charges the
//! CPU-cost model per operation instead of per byte, matching the paper's
//! observation that with RDMA the network is no longer bandwidth-bound.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A single column value.
#[derive(Clone, PartialEq, Serialize, Deserialize)]
pub enum Value {
    /// 64-bit signed integer (ids, counts, quantities).
    I64(i64),
    /// 64-bit float (balances, prices). TPC-C monetary columns use this.
    F64(f64),
    /// Variable-length string (names, addresses).
    Str(String),
    /// Absent / NULL.
    Null,
}

impl Value {
    /// Interpret as integer, panicking with a descriptive message otherwise.
    ///
    /// Stored procedures are compiled against a fixed schema, so a type
    /// mismatch is a programming error, not a runtime condition.
    #[inline]
    pub fn as_i64(&self) -> i64 {
        match self {
            Value::I64(v) => *v,
            other => panic!("expected I64, found {other:?}"),
        }
    }

    #[inline]
    pub fn as_f64(&self) -> f64 {
        match self {
            Value::F64(v) => *v,
            Value::I64(v) => *v as f64,
            other => panic!("expected F64, found {other:?}"),
        }
    }

    #[inline]
    pub fn as_str(&self) -> &str {
        match self {
            Value::Str(s) => s,
            other => panic!("expected Str, found {other:?}"),
        }
    }

    #[inline]
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Approximate in-memory footprint in bytes, used by the storage layer
    /// to report table sizes and by the lookup-table size experiment.
    pub fn approx_size(&self) -> usize {
        match self {
            Value::I64(_) | Value::F64(_) => 8,
            Value::Str(s) => s.len() + 8,
            Value::Null => 1,
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::I64(v)
    }
}

impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::I64(v as i64)
    }
}

impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::I64(v as i64)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::F64(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_owned())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

impl fmt::Debug for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::I64(v) => write!(f, "{v}"),
            Value::F64(v) => write!(f, "{v:.2}"),
            Value::Str(s) => write!(f, "{s:?}"),
            Value::Null => write!(f, "NULL"),
        }
    }
}

/// A materialized record: an ordered list of column values.
pub type Row = Vec<Value>;

/// Helper to build rows tersely in data generators and tests.
///
/// ```
/// use chiller_common::value::{row, Value};
/// let r = row(&[Value::from(1i64), Value::from("abc")]);
/// assert_eq!(r.len(), 2);
/// ```
pub fn row(vals: &[Value]) -> Row {
    vals.to_vec()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        assert_eq!(Value::I64(5).as_i64(), 5);
        assert_eq!(Value::F64(2.5).as_f64(), 2.5);
        assert_eq!(Value::I64(3).as_f64(), 3.0);
        assert_eq!(Value::from("hi").as_str(), "hi");
        assert!(Value::Null.is_null());
    }

    #[test]
    #[should_panic(expected = "expected I64")]
    fn wrong_type_panics() {
        Value::Null.as_i64();
    }

    #[test]
    fn sizes() {
        assert_eq!(Value::I64(1).approx_size(), 8);
        assert_eq!(Value::from("abcd").approx_size(), 12);
        assert_eq!(Value::Null.approx_size(), 1);
    }

    #[test]
    fn from_impls() {
        assert_eq!(Value::from(7u64).as_i64(), 7);
        assert_eq!(Value::from(7i32).as_i64(), 7);
        assert_eq!(Value::from(String::from("x")).as_str(), "x");
    }

    #[test]
    fn debug_format() {
        assert_eq!(format!("{:?}", Value::F64(1.0)), "1.00");
        assert_eq!(format!("{:?}", Value::Null), "NULL");
    }
}
