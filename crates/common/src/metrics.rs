//! Metric primitives: log-bucketed latency histograms and labelled counters.
//!
//! The transaction engines record per-transaction latency, per-record
//! contention spans, commit/abort counts per transaction type, and the
//! distributed-transaction ratio. The experiment harness aggregates these
//! into the rows the paper's figures report.

use crate::time::Duration;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Latency histogram with logarithmic buckets (HdrHistogram-style, base-2
/// buckets with 64 linear sub-buckets), covering 1ns .. ~18s.
///
/// Recording is O(1); quantile queries are O(buckets).
///
/// The sub-bucket count is calibrated for the *wall-clock* range: on the
/// threaded backend committed-transaction latencies sit in the
/// 100µs–100ms decades (scheduler quanta included), where a quantile's
/// relative error is one sub-bucket width — 1/64 ≈ 1.6% here, so a 10ms
/// p99 resolves to ±160µs. The original 16 sub-buckets (6.25%) were fine
/// for the simulator's tightly clustered virtual latencies but made
/// threaded p99s jump in ≥0.6ms steps. Memory cost is ~29KB per
/// histogram, irrelevant at one `MetricSet` per engine.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Histogram {
    buckets: Vec<u64>,
    count: u64,
    sum: u128,
    max: u64,
    min: u64,
}

const SUB_BUCKETS: usize = 64;
const SUB_BITS: u32 = 6; // log2(SUB_BUCKETS)
const NUM_BUCKETS: usize = (64 - SUB_BITS as usize) * SUB_BUCKETS;

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    pub fn new() -> Self {
        Histogram {
            buckets: vec![0; NUM_BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
            min: u64::MAX,
        }
    }

    #[inline]
    fn bucket_index(value: u64) -> usize {
        let v = value.max(1);
        let msb = 63 - v.leading_zeros();
        if msb < SUB_BITS {
            return v as usize;
        }
        let exp = msb - SUB_BITS;
        let sub = (v >> exp) as usize & (SUB_BUCKETS - 1);
        ((exp + 1) as usize) * SUB_BUCKETS + sub
    }

    /// Representative (upper-bound) value of a bucket index.
    fn bucket_value(index: usize) -> u64 {
        if index < SUB_BUCKETS {
            return index as u64;
        }
        let exp = (index / SUB_BUCKETS - 1) as u32;
        let sub = (index % SUB_BUCKETS) as u64;
        ((SUB_BUCKETS as u64) + sub) << exp
    }

    #[inline]
    pub fn record(&mut self, value: u64) {
        self.buckets[Self::bucket_index(value)] += 1;
        self.count += 1;
        self.sum += value as u128;
        self.max = self.max.max(value);
        self.min = self.min.min(value);
    }

    #[inline]
    pub fn record_duration(&mut self, d: Duration) {
        self.record(d.as_nanos());
    }

    pub fn count(&self) -> u64 {
        self.count
    }

    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    pub fn max(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.max
        }
    }

    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Approximate quantile (`q` in `[0, 1]`).
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Self::bucket_value(i).min(self.max).max(self.min);
            }
        }
        self.max
    }

    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Merge another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
        self.min = self.min.min(other.min);
    }
}

/// Why a transaction attempt aborted — the structured taxonomy the tracing
/// layer and the per-protocol abort counters share.
///
/// Exactly one reason is recorded per *transient* abort (the aborts the
/// paper's abort-rate figures count); logic aborts (intentional rollbacks)
/// carry no reason. The sum over all reasons therefore equals
/// [`MetricSet::total_aborts`] — a property the test suite pins under all
/// three protocols.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AbortReason {
    /// NO_WAIT lock acquisition hit a conflicting holder (Chiller inner/outer
    /// regions and 2PL both abort rather than wait).
    NoWaitConflict,
    /// OCC backward validation found a conflicting committed writer.
    OccValidation,
    /// The request raced a live record migration: the addressed node had
    /// already migrated the record out, so the attempt must re-route.
    MigrationStaleRoute,
    /// The attempt exceeded its deadline. Reserved: no current protocol path
    /// emits it (the simulated fabric never times out), but socket backends
    /// will.
    Timeout,
}

impl AbortReason {
    /// Every reason, in counter order.
    pub const ALL: [AbortReason; 4] = [
        AbortReason::NoWaitConflict,
        AbortReason::OccValidation,
        AbortReason::MigrationStaleRoute,
        AbortReason::Timeout,
    ];

    /// Stable snake_case label (Prometheus label / JSON field value).
    pub fn label(self) -> &'static str {
        match self {
            AbortReason::NoWaitConflict => "no_wait_conflict",
            AbortReason::OccValidation => "occ_validation",
            AbortReason::MigrationStaleRoute => "migration_stale_route",
            AbortReason::Timeout => "timeout",
        }
    }

    #[inline]
    fn idx(self) -> usize {
        match self {
            AbortReason::NoWaitConflict => 0,
            AbortReason::OccValidation => 1,
            AbortReason::MigrationStaleRoute => 2,
            AbortReason::Timeout => 3,
        }
    }
}

impl std::fmt::Display for AbortReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Per-reason abort counters (one slot per [`AbortReason`]).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct AbortReasons {
    counts: [u64; AbortReason::ALL.len()],
}

impl AbortReasons {
    #[inline]
    pub fn record(&mut self, reason: AbortReason) {
        self.counts[reason.idx()] += 1;
    }

    pub fn get(&self, reason: AbortReason) -> u64 {
        self.counts[reason.idx()]
    }

    /// Total transient aborts across all reasons.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// `(reason, count)` pairs in counter order (including zero counts).
    pub fn iter(&self) -> impl Iterator<Item = (AbortReason, u64)> + '_ {
        AbortReason::ALL.iter().map(|&r| (r, self.counts[r.idx()]))
    }

    pub fn merge(&mut self, other: &AbortReasons) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
    }
}

/// Commit/abort bookkeeping for one transaction type.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TxnTypeStats {
    pub commits: u64,
    /// Transient aborts (lock conflict / validation failure), i.e. the aborts
    /// the paper's abort-rate figures count.
    pub aborts: u64,
    /// Final logic aborts (e.g. TPC-C's intentional 1% NewOrder rollbacks);
    /// excluded from contention abort rates.
    pub logic_aborts: u64,
    /// Commits whose execution touched more than one partition.
    pub distributed_commits: u64,
}

impl TxnTypeStats {
    /// Abort rate as defined in the paper: aborts / (aborts + commits).
    pub fn abort_rate(&self) -> f64 {
        let attempts = self.aborts + self.commits;
        if attempts == 0 {
            0.0
        } else {
            self.aborts as f64 / attempts as f64
        }
    }

    pub fn distributed_ratio(&self) -> f64 {
        if self.commits == 0 {
            0.0
        } else {
            self.distributed_commits as f64 / self.commits as f64
        }
    }

    pub fn merge(&mut self, o: &TxnTypeStats) {
        self.commits += o.commits;
        self.aborts += o.aborts;
        self.logic_aborts += o.logic_aborts;
        self.distributed_commits += o.distributed_commits;
    }
}

/// Aggregated run metrics keyed by transaction-type name.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct MetricSet {
    pub per_type: BTreeMap<String, TxnTypeStats>,
    pub latency: Histogram,
    /// Contention span (lock hold time) of records flagged hot.
    pub hot_contention_span: Histogram,
    /// Contention span of all other records.
    pub cold_contention_span: Histogram,
    /// Live record migrations completed by this engine (destination side).
    pub migrations_completed: u64,
    /// Migration attempts that hit a NO_WAIT conflict and were retried.
    pub migration_retries: u64,
    /// Migrations abandoned (retry budget exhausted, drained shutdown, or
    /// the record vanished from the source before the copy).
    pub migrations_abandoned: u64,
    /// Transient aborts broken down by [`AbortReason`]; totals match
    /// [`MetricSet::total_aborts`].
    pub abort_reasons: AbortReasons,
}

impl MetricSet {
    pub fn new() -> Self {
        MetricSet {
            per_type: BTreeMap::new(),
            latency: Histogram::new(),
            hot_contention_span: Histogram::new(),
            cold_contention_span: Histogram::new(),
            migrations_completed: 0,
            migration_retries: 0,
            migrations_abandoned: 0,
            abort_reasons: AbortReasons::default(),
        }
    }

    pub fn type_stats(&mut self, name: &str) -> &mut TxnTypeStats {
        self.per_type.entry(name.to_owned()).or_default()
    }

    pub fn total_commits(&self) -> u64 {
        self.per_type.values().map(|s| s.commits).sum()
    }

    pub fn total_aborts(&self) -> u64 {
        self.per_type.values().map(|s| s.aborts).sum()
    }

    pub fn overall_abort_rate(&self) -> f64 {
        let commits = self.total_commits();
        let aborts = self.total_aborts();
        if commits + aborts == 0 {
            0.0
        } else {
            aborts as f64 / (commits + aborts) as f64
        }
    }

    pub fn overall_distributed_ratio(&self) -> f64 {
        let commits = self.total_commits();
        if commits == 0 {
            return 0.0;
        }
        let dist: u64 = self.per_type.values().map(|s| s.distributed_commits).sum();
        dist as f64 / commits as f64
    }

    pub fn merge(&mut self, other: &MetricSet) {
        for (k, v) in &other.per_type {
            self.per_type.entry(k.clone()).or_default().merge(v);
        }
        self.latency.merge(&other.latency);
        self.hot_contention_span.merge(&other.hot_contention_span);
        self.cold_contention_span.merge(&other.cold_contention_span);
        self.migrations_completed += other.migrations_completed;
        self.migration_retries += other.migration_retries;
        self.migrations_abandoned += other.migrations_abandoned;
        self.abort_reasons.merge(&other.abort_reasons);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_basic_stats() {
        let mut h = Histogram::new();
        for v in [10, 20, 30, 40, 50] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.mean(), 30.0);
        assert_eq!(h.min(), 10);
        assert_eq!(h.max(), 50);
    }

    #[test]
    fn histogram_quantiles_within_error() {
        let mut h = Histogram::new();
        for v in 1..=10_000u64 {
            h.record(v);
        }
        let p50 = h.p50() as f64;
        assert!((p50 - 5_000.0).abs() / 5_000.0 < 0.08, "p50={p50}");
        let p99 = h.p99() as f64;
        assert!((p99 - 9_900.0).abs() / 9_900.0 < 0.08, "p99={p99}");
    }

    #[test]
    fn histogram_bucket_roundtrip_monotone() {
        let mut last = 0;
        for v in [1u64, 2, 15, 16, 17, 100, 1_000, 123_456, u32::MAX as u64] {
            let idx = Histogram::bucket_index(v);
            assert!(idx >= last, "bucket index must be monotone in value");
            last = idx;
            let rep = Histogram::bucket_value(idx);
            // Representative within one sub-bucket (1/64 relative error).
            assert!(rep as f64 >= v as f64 * 0.98, "v={v} rep={rep}");
            assert!(rep as f64 <= v as f64 * 1.016 + 1.0, "v={v} rep={rep}");
        }
    }

    /// The calibration target: quantiles over the wall-clock decades
    /// (100µs..100ms in ns) must resolve to better than 2% relative
    /// error, so threaded p99s are as readable as simulated ones.
    #[test]
    fn histogram_wall_clock_range_resolves_fine() {
        let mut h = Histogram::new();
        // Uniform spread over 100µs..10ms — the threaded latency band.
        for v in (100_000u64..=10_000_000).step_by(1_000) {
            h.record(v);
        }
        let p99 = h.p99() as f64;
        let expect = 0.99 * (10_000_000.0 - 100_000.0) + 100_000.0;
        assert!(
            (p99 - expect).abs() / expect < 0.02,
            "p99={p99} expect~{expect}"
        );
        let p50 = h.p50() as f64;
        let expect50 = 0.50 * (10_000_000.0 - 100_000.0) + 100_000.0;
        assert!(
            (p50 - expect50).abs() / expect50 < 0.02,
            "p50={p50} expect~{expect50}"
        );
    }

    #[test]
    fn histogram_merge() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record(5);
        b.record(15);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.min(), 5);
        assert_eq!(a.max(), 15);
    }

    #[test]
    fn empty_histogram_is_safe() {
        let h = Histogram::new();
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.max(), 0);
    }

    /// Property test (satellite: quantile accuracy at 64-sub-bucket
    /// resolution): for randomized value sets spanning the nanosecond to
    /// multi-second decades, every queried quantile must land within one
    /// sub-bucket (1/64 ≈ 1.6%, plus rounding slack) of the exact answer
    /// computed from a sorted reference vector.
    #[test]
    fn histogram_quantiles_match_sorted_reference() {
        use rand::Rng;
        for seed in 0..16u64 {
            let mut rng = crate::rng::seeded(0x4157_0612 ^ seed);
            // Mix of decades: exercise low raw buckets, the wall-clock band,
            // and large outliers in the same histogram.
            let n = rng.gen_range(100usize..4_000);
            let mut values = Vec::with_capacity(n);
            let mut h = Histogram::new();
            for _ in 0..n {
                let decade = rng.gen_range(0u32..10);
                let base = 10u64.pow(decade);
                let v = rng.gen_range(base..base.saturating_mul(10).max(base + 1));
                values.push(v);
                h.record(v);
            }
            values.sort_unstable();
            for &q in &[0.0, 0.01, 0.10, 0.25, 0.50, 0.75, 0.90, 0.99, 0.999, 1.0] {
                let target = ((q * n as f64).ceil() as usize).clamp(1, n);
                let exact = values[target - 1] as f64;
                let approx = h.quantile(q) as f64;
                // One sub-bucket of relative error plus 1 for integer rounding.
                let tol = exact / SUB_BUCKETS as f64 + 1.0;
                assert!(
                    (approx - exact).abs() <= tol,
                    "seed={seed} q={q} exact={exact} approx={approx} tol={tol}"
                );
            }
        }
    }

    #[test]
    fn abort_reasons_record_and_total() {
        let mut r = AbortReasons::default();
        r.record(AbortReason::NoWaitConflict);
        r.record(AbortReason::NoWaitConflict);
        r.record(AbortReason::OccValidation);
        r.record(AbortReason::MigrationStaleRoute);
        assert_eq!(r.get(AbortReason::NoWaitConflict), 2);
        assert_eq!(r.get(AbortReason::OccValidation), 1);
        assert_eq!(r.get(AbortReason::Timeout), 0);
        assert_eq!(r.total(), 4);

        let mut other = AbortReasons::default();
        other.record(AbortReason::Timeout);
        r.merge(&other);
        assert_eq!(r.total(), 5);
        assert_eq!(r.get(AbortReason::Timeout), 1);

        let labels: Vec<&str> = r.iter().map(|(reason, _)| reason.label()).collect();
        assert_eq!(
            labels,
            [
                "no_wait_conflict",
                "occ_validation",
                "migration_stale_route",
                "timeout"
            ]
        );
    }

    #[test]
    fn metric_set_merges_abort_reasons() {
        let mut a = MetricSet::new();
        a.abort_reasons.record(AbortReason::NoWaitConflict);
        let mut b = MetricSet::new();
        b.abort_reasons.record(AbortReason::OccValidation);
        a.merge(&b);
        assert_eq!(a.abort_reasons.total(), 2);
    }

    #[test]
    fn txn_stats_rates() {
        let s = TxnTypeStats {
            commits: 75,
            aborts: 25,
            logic_aborts: 3,
            distributed_commits: 15,
        };
        assert!((s.abort_rate() - 0.25).abs() < 1e-12);
        assert!((s.distributed_ratio() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn metric_set_aggregation() {
        let mut m = MetricSet::new();
        m.type_stats("NewOrder").commits = 10;
        m.type_stats("NewOrder").aborts = 10;
        m.type_stats("Payment").commits = 30;
        assert_eq!(m.total_commits(), 40);
        assert!((m.overall_abort_rate() - 0.2).abs() < 1e-12);

        let mut other = MetricSet::new();
        other.type_stats("Payment").commits = 5;
        m.merge(&other);
        assert_eq!(m.per_type["Payment"].commits, 35);
    }
}
