//! Error types shared across the workspace.

use crate::ids::{RecordId, TxnId};
use std::fmt;

/// Unified error type for storage, execution and partitioning failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChillerError {
    /// A lock request failed under the NO_WAIT policy; the transaction must
    /// abort (and typically retries). Carries the record that conflicted.
    LockConflict { txn: TxnId, record: RecordId },
    /// OCC validation detected a conflicting concurrent access.
    ValidationFailed { txn: TxnId, record: RecordId },
    /// A record expected to exist was not found.
    RecordNotFound(RecordId),
    /// A record being inserted already exists.
    DuplicateKey(RecordId),
    /// A stored-procedure-level integrity check failed (e.g. insufficient
    /// balance), producing a *logic abort* that is not retried.
    LogicAbort { txn: TxnId, reason: &'static str },
    /// The stored procedure definition is internally inconsistent
    /// (e.g. cyclic dependency graph, reference to an undefined op output).
    InvalidProcedure(String),
    /// Partitioning failed (e.g. balance constraint unsatisfiable).
    Partitioning(String),
    /// Configuration error detected while building a cluster.
    Config(String),
}

impl fmt::Display for ChillerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChillerError::LockConflict { txn, record } => {
                write!(f, "{txn}: lock conflict on {record} (NO_WAIT abort)")
            }
            ChillerError::ValidationFailed { txn, record } => {
                write!(f, "{txn}: OCC validation failed on {record}")
            }
            ChillerError::RecordNotFound(r) => write!(f, "record not found: {r}"),
            ChillerError::DuplicateKey(r) => write!(f, "duplicate key: {r}"),
            ChillerError::LogicAbort { txn, reason } => {
                write!(f, "{txn}: logic abort: {reason}")
            }
            ChillerError::InvalidProcedure(m) => write!(f, "invalid procedure: {m}"),
            ChillerError::Partitioning(m) => write!(f, "partitioning error: {m}"),
            ChillerError::Config(m) => write!(f, "config error: {m}"),
        }
    }
}

impl std::error::Error for ChillerError {}

pub type Result<T> = std::result::Result<T, ChillerError>;

impl ChillerError {
    /// Whether a transaction failing with this error should be retried by
    /// the closed-loop driver. Lock conflicts and validation failures are
    /// transient; logic aborts are final (TPC-C's 1% rollback NewOrders).
    pub fn is_retryable(&self) -> bool {
        matches!(
            self,
            ChillerError::LockConflict { .. } | ChillerError::ValidationFailed { .. }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{NodeId, TableId};

    fn rid() -> RecordId {
        RecordId::new(TableId(1), 9)
    }

    #[test]
    fn retryability() {
        let txn = TxnId::new(NodeId(0), 1);
        assert!(ChillerError::LockConflict { txn, record: rid() }.is_retryable());
        assert!(ChillerError::ValidationFailed { txn, record: rid() }.is_retryable());
        assert!(!ChillerError::LogicAbort {
            txn,
            reason: "no stock"
        }
        .is_retryable());
        assert!(!ChillerError::RecordNotFound(rid()).is_retryable());
    }

    #[test]
    fn display_contains_context() {
        let txn = TxnId::new(NodeId(2), 7);
        let msg = ChillerError::LockConflict { txn, record: rid() }.to_string();
        assert!(msg.contains("txn2.7"));
        assert!(msg.contains("tbl1#9"));
    }
}
