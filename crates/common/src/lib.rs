//! # chiller-common
//!
//! Shared foundation types for the Chiller reproduction: identifiers, cell
//! values and rows, virtual time, error types, seeded random utilities
//! (including a Zipf sampler used by the workload generators), metric
//! primitives (histograms, counters) and configuration structs shared by the
//! simulator and the transaction engines.
//!
//! Everything in this crate is deliberately dependency-light so that every
//! other crate in the workspace can build on it.

pub mod config;
pub mod error;
pub mod ids;
pub mod metrics;
pub mod rng;
pub mod time;
pub mod value;

pub use config::{EngineConfig, NetworkConfig, ReplicationConfig, SimConfig};
pub use error::{ChillerError, Result};
pub use ids::{NodeId, OpId, PartitionId, RecordId, TableId, TxnId};
pub use metrics::{AbortReason, AbortReasons, Histogram, MetricSet};
pub use time::SimTime;
pub use value::{Row, Value};
