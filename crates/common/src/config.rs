//! Configuration shared by the simulator, engines and experiment harness.
//!
//! Latency defaults are calibrated to the paper's testbed class (InfiniBand
//! EDR, ConnectX-4): one-sided verb latencies of 1–2 µs, RPC handling of
//! about a microsecond of CPU, and local memory operations around 100 ns.
//! Absolute values only scale the reported throughput; the experiments care
//! about the *ratios* (network round trip vs local access), which these
//! defaults preserve.

use crate::time::Duration;
use serde::{Deserialize, Serialize};

/// Latency and CPU-cost model of the simulated RDMA network.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NetworkConfig {
    /// One-way latency of a one-sided RDMA verb (READ/WRITE/CAS) between two
    /// distinct machines. Handled by the remote NIC: costs no remote CPU.
    pub one_sided_ns: u64,
    /// One-way latency of an RPC (two-sided send/recv) between machines.
    pub rpc_ns: u64,
    /// Latency of any verb when source and destination are the same machine
    /// (local memory access through the local storage layer).
    pub local_ns: u64,
    /// CPU time the receiving engine spends handling one RPC message
    /// (unmarshalling + dispatch).
    pub rpc_handler_cpu_ns: u64,
}

impl Default for NetworkConfig {
    fn default() -> Self {
        NetworkConfig {
            one_sided_ns: 1_500,
            rpc_ns: 1_800,
            local_ns: 100,
            rpc_handler_cpu_ns: 700,
        }
    }
}

impl NetworkConfig {
    /// A network with effectively zero latency — useful in unit tests that
    /// only care about protocol logic, not timing.
    pub fn instant() -> Self {
        NetworkConfig {
            one_sided_ns: 1,
            rpc_ns: 1,
            local_ns: 0,
            rpc_handler_cpu_ns: 0,
        }
    }

    /// A classic TCP-like slow network (tens of microseconds per message):
    /// used by ablations that show why contention-centric partitioning
    /// targets *fast* networks specifically.
    pub fn slow_tcp() -> Self {
        NetworkConfig {
            one_sided_ns: 35_000,
            rpc_ns: 35_000,
            local_ns: 100,
            rpc_handler_cpu_ns: 4_000,
        }
    }
}

/// Per-engine execution-cost model and concurrency settings.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EngineConfig {
    /// Maximum transactions simultaneously open per engine — the paper's
    /// "number of concurrent transactions per warehouse" knob (Figure 9).
    pub concurrency: usize,
    /// CPU time to execute one stored-procedure operation (read/update logic
    /// against local memory, excluding network).
    pub op_cpu_ns: u64,
    /// CPU time to start/finish a transaction (input parsing, logging).
    pub txn_overhead_cpu_ns: u64,
    /// Backoff before retrying an aborted transaction.
    pub retry_backoff: Duration,
    /// Cap on retries per input before the driver gives up and counts a
    /// permanent failure (practically unreachable in the experiments, but
    /// bounds worst-case livelock in adversarial tests).
    pub max_retries: u32,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            concurrency: 1,
            op_cpu_ns: 300,
            txn_overhead_cpu_ns: 1_000,
            retry_backoff: Duration::from_micros(5),
            max_retries: 10_000,
        }
    }
}

/// Replication settings (§5 of the paper).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ReplicationConfig {
    /// Total copies per record (paper's experiments use 2: one primary plus
    /// one replica on a different machine).
    pub degree: usize,
}

impl Default for ReplicationConfig {
    fn default() -> Self {
        ReplicationConfig { degree: 2 }
    }
}

impl ReplicationConfig {
    /// Disable replication entirely (degree 1 = primary only).
    pub fn none() -> Self {
        ReplicationConfig { degree: 1 }
    }

    pub fn replicas(&self) -> usize {
        self.degree.saturating_sub(1)
    }
}

/// Top-level simulation config bundling the model parameters.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct SimConfig {
    pub network: NetworkConfig,
    pub engine: EngineConfig,
    pub replication: ReplicationConfig,
    /// Seed for all randomness in the run.
    pub seed: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_fast_network() {
        let n = NetworkConfig::default();
        // Network RTT must dominate local access by >= 10x: the premise of
        // the paper's contention argument (§2).
        assert!(n.one_sided_ns >= 10 * n.local_ns);
        assert!(n.rpc_ns >= n.one_sided_ns);
    }

    #[test]
    fn slow_tcp_much_slower() {
        let fast = NetworkConfig::default();
        let slow = NetworkConfig::slow_tcp();
        assert!(slow.one_sided_ns > 10 * fast.one_sided_ns);
    }

    #[test]
    fn replication_counts() {
        assert_eq!(ReplicationConfig::default().replicas(), 1);
        assert_eq!(ReplicationConfig::none().replicas(), 0);
        assert_eq!(ReplicationConfig { degree: 3 }.replicas(), 2);
    }
}
