//! Strongly-typed identifiers used across the workspace.
//!
//! All identifiers are thin newtypes over integers so they are `Copy`, hash
//! fast, and cannot be confused with one another at API boundaries.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifies a physical server (simulated machine) in the cluster.
///
/// In the NAM-DB style deployment each node hosts exactly one primary
/// partition and one execution engine (the paper pins one engine thread per
/// core and, in the partitioning experiments, one core per machine).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub u32);

/// Identifies a logical data partition.
///
/// Partition `p`'s primary copy lives on node `p` in the default topology;
/// replicas are placed on the following nodes (mod cluster size).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct PartitionId(pub u32);

/// Identifies a table within the database schema.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TableId(pub u16);

/// Globally-unique transaction identifier.
///
/// Encodes the originating node in the upper bits and a locally increasing
/// sequence number in the lower bits so coordinators can mint ids without
/// coordination — mirroring how the paper derives unique message ids by
/// concatenating a partition id with a local counter (§5).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TxnId(pub u64);

/// Identifies one operation within a stored procedure (index into the
/// procedure's operation list; also the node id in the dependency graph).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct OpId(pub u16);

/// Fully-qualified record identifier: table + primary key.
///
/// Primary keys are 64-bit; composite keys are packed by the schema layer
/// (e.g. TPC-C `(w_id, d_id, c_id)` packs into bit-fields). Packing keeps
/// records `Copy` and makes the hot-record lookup table a flat hash map.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct RecordId {
    pub table: TableId,
    pub key: u64,
}

impl NodeId {
    /// Index usable for `Vec`-based node tables.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl PartitionId {
    /// Index usable for `Vec`-based partition tables.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl TxnId {
    const NODE_SHIFT: u32 = 40;

    /// Mint a transaction id unique across the cluster: the upper 24 bits
    /// carry the coordinator node, the lower 40 bits a local sequence.
    #[inline]
    pub fn new(node: NodeId, seq: u64) -> Self {
        debug_assert!(seq < (1 << Self::NODE_SHIFT));
        TxnId(((node.0 as u64) << Self::NODE_SHIFT) | seq)
    }

    /// The node that coordinates this transaction.
    #[inline]
    pub fn coordinator(self) -> NodeId {
        NodeId((self.0 >> Self::NODE_SHIFT) as u32)
    }

    /// The coordinator-local sequence number.
    #[inline]
    pub fn seq(self) -> u64 {
        self.0 & ((1 << Self::NODE_SHIFT) - 1)
    }
}

impl RecordId {
    #[inline]
    pub fn new(table: TableId, key: u64) -> Self {
        RecordId { table, key }
    }
}

impl OpId {
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

macro_rules! impl_debug_display {
    ($ty:ident, $prefix:expr) => {
        impl fmt::Debug for $ty {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }
        impl fmt::Display for $ty {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                fmt::Debug::fmt(self, f)
            }
        }
    };
}

impl_debug_display!(NodeId, "n");
impl_debug_display!(PartitionId, "p");
impl_debug_display!(TableId, "tbl");
impl_debug_display!(OpId, "op");

impl fmt::Debug for TxnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "txn{}.{}", self.coordinator().0, self.seq())
    }
}

impl fmt::Display for TxnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl fmt::Debug for RecordId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}#{}", self.table, self.key)
    }
}

impl fmt::Display for RecordId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn txn_id_roundtrips_node_and_seq() {
        let id = TxnId::new(NodeId(7), 123_456);
        assert_eq!(id.coordinator(), NodeId(7));
        assert_eq!(id.seq(), 123_456);
    }

    #[test]
    fn txn_id_distinct_across_nodes() {
        let a = TxnId::new(NodeId(1), 5);
        let b = TxnId::new(NodeId(2), 5);
        assert_ne!(a, b);
    }

    #[test]
    fn txn_id_max_seq_supported() {
        let seq = (1u64 << 40) - 1;
        let id = TxnId::new(NodeId(u32::MAX >> 8), seq);
        assert_eq!(id.seq(), seq);
    }

    #[test]
    fn record_id_ordering_groups_by_table() {
        let a = RecordId::new(TableId(1), 999);
        let b = RecordId::new(TableId(2), 0);
        assert!(a < b);
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", NodeId(3)), "n3");
        assert_eq!(format!("{}", PartitionId(4)), "p4");
        assert_eq!(format!("{}", TxnId::new(NodeId(2), 9)), "txn2.9");
        assert_eq!(format!("{}", RecordId::new(TableId(1), 42)), "tbl1#42");
    }
}
