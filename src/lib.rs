//! Workspace façade crate: re-exports the whole reproduction so the
//! top-level examples and cross-crate tests have a single entry point.
//!
//! The real API lives in the member crates — start at [`chiller`] (cluster
//! construction and runs) and [`chiller_workload`] (the paper's workloads).

pub use chiller;
pub use chiller_cc;
pub use chiller_common;
pub use chiller_partition;
pub use chiller_sproc;
pub use chiller_storage;
pub use chiller_workload;
